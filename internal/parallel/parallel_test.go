package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
}

func TestForEachCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		const n = 1000
		var hits [n]atomic.Int32
		if err := ForEach(n, workers, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if c := hits[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachZeroAndSmallN(t *testing.T) {
	if err := ForEach(0, 8, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
	ran := false
	if err := ForEach(1, 8, func(i int) error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("single index not run")
	}
}

// TestForEachLowestIndexError checks the determinism contract: the surfaced
// error must be the lowest failing index's regardless of worker count or
// scheduling.
func TestForEachLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		for trial := 0; trial < 20; trial++ {
			err := ForEach(100, workers, func(i int) error {
				if i%7 == 3 { // fails at 3, 10, 17, ...
					return fmt.Errorf("index %d failed", i)
				}
				return nil
			})
			if err == nil || err.Error() != "index 3 failed" {
				t.Fatalf("workers=%d: got %v, want index 3's error", workers, err)
			}
		}
	}
}

func TestForEachStopsClaimingAfterFailure(t *testing.T) {
	var ran atomic.Int32
	sentinel := errors.New("boom")
	err := ForEach(1_000_000, 4, func(i int) error {
		ran.Add(1)
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v", err)
	}
	if n := ran.Load(); n > 1000 {
		t.Fatalf("ran %d indices after failure; early exit broken", n)
	}
}

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		out, err := Map(257, workers, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapError(t *testing.T) {
	out, err := Map(10, 4, func(i int) (string, error) {
		if i >= 5 {
			return "", fmt.Errorf("bad %d", i)
		}
		return "ok", nil
	})
	if err == nil || err.Error() != "bad 5" {
		t.Fatalf("got %v", err)
	}
	if out != nil {
		t.Fatal("partial results returned on error")
	}
}

func TestForEachChunkCoversRange(t *testing.T) {
	for _, tc := range []struct{ n, workers, minChunk int }{
		{0, 4, 10}, {1, 4, 10}, {9, 4, 10}, {100, 4, 10}, {101, 3, 7}, {5000, 0, 64},
	} {
		var hits []atomic.Int32
		hits = make([]atomic.Int32, tc.n)
		if err := ForEachChunk(tc.n, tc.workers, tc.minChunk, func(lo, hi int) error {
			if lo >= hi && tc.n > 0 {
				return fmt.Errorf("empty chunk [%d,%d)", lo, hi)
			}
			for i := lo; i < hi; i++ {
				hits[i].Add(1)
			}
			return nil
		}); err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		for i := range hits {
			if c := hits[i].Load(); c != 1 {
				t.Fatalf("%+v: index %d covered %d times", tc, i, c)
			}
		}
	}
}
