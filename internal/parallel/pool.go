package parallel

import (
	"context"
	"errors"
	"sync"

	"repro/internal/obs"
)

// ErrPoolClosed is returned by Submit after Close.
var ErrPoolClosed = errors.New("parallel: pool is closed")

// Pool is a bounded worker pool for long-lived servers: a fixed set of
// goroutines receiving tasks from an unbuffered channel. Unlike ForEach/Map
// — which spread one finite batch and then join — a Pool accepts tasks for
// its whole lifetime and bounds how many run at once, which is what a
// serving process needs to keep request concurrency from exceeding the
// machine. The channel is unbuffered, so a successful Submit means a worker
// has committed to the task, and submission blocks while every worker is
// busy — the caller's context bounds queueing time.
type Pool struct {
	tasks chan func()
	done  chan struct{}
	wg    sync.WaitGroup
	once  sync.Once

	// Instruments, fixed at construction (NewPoolObs) so workers never race
	// a later assignment. All nil when the pool is unobserved; every obs
	// method is a no-op on nil.
	queueDepth  *obs.Gauge
	busyWorkers *obs.Gauge
	tasksDone   *obs.Counter
}

// NewPool starts a pool of the given size; size <= 0 means one worker per
// CPU (GOMAXPROCS).
func NewPool(size int) *Pool {
	return NewPoolObs(size, nil)
}

// NewPoolObs starts a pool whose occupancy is published to reg: queue depth
// (submitters blocked waiting for a worker), busy workers, a completed-task
// counter, and the fixed worker count. reg may be nil, which is NewPool.
func NewPoolObs(size int, reg *obs.Registry) *Pool {
	size = Workers(size)
	p := &Pool{tasks: make(chan func()), done: make(chan struct{})}
	if reg != nil {
		p.queueDepth = reg.Gauge("pool_queue_depth")
		p.busyWorkers = reg.Gauge("pool_busy_workers")
		p.tasksDone = reg.Counter("pool_tasks_done_total")
		reg.Gauge("pool_workers").Set(int64(size))
	}
	p.wg.Add(size)
	for i := 0; i < size; i++ {
		go func() {
			defer p.wg.Done()
			for {
				select {
				case task := <-p.tasks:
					p.busyWorkers.Add(1)
					task()
					p.busyWorkers.Add(-1)
					p.tasksDone.Inc()
				case <-p.done:
					return
				}
			}
		}()
	}
	return p
}

// Submit hands task to an idle worker, blocking until one accepts it or ctx
// is done. It returns ctx.Err() on expiry and ErrPoolClosed after Close.
// The task runs in exactly the cases where Submit returns nil: the channel
// is unbuffered, so a completed send is a worker's commitment to run it.
func (p *Pool) Submit(ctx context.Context, task func()) error {
	select {
	case <-p.done:
		return ErrPoolClosed
	default:
	}
	p.queueDepth.Add(1)
	defer p.queueDepth.Add(-1)
	select {
	case p.tasks <- task:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-p.done:
		return ErrPoolClosed
	}
}

// Close stops accepting tasks and waits for every accepted task to finish.
// Safe to call more than once.
func (p *Pool) Close() {
	p.once.Do(func() { close(p.done) })
	p.wg.Wait()
}
