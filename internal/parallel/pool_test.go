package parallel

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolRunsEverythingSubmitted: every successful Submit runs exactly
// once, across more tasks than workers.
func TestPoolRunsEverythingSubmitted(t *testing.T) {
	p := NewPool(3)
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		if err := p.Submit(context.Background(), func() {
			defer wg.Done()
			ran.Add(1)
		}); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	wg.Wait()
	if ran.Load() != 50 {
		t.Fatalf("ran %d tasks, want 50", ran.Load())
	}
	p.Close()
}

// TestPoolBoundsConcurrency: no more than size tasks run at once.
func TestPoolBoundsConcurrency(t *testing.T) {
	const size = 2
	p := NewPool(size)
	defer p.Close()
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		if err := p.Submit(context.Background(), func() {
			defer wg.Done()
			n := cur.Add(1)
			for {
				old := peak.Load()
				if n <= old || peak.CompareAndSwap(old, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
		}); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	wg.Wait()
	if got := peak.Load(); got > size {
		t.Fatalf("peak concurrency %d exceeds pool size %d", got, size)
	}
}

// TestPoolSubmitHonorsContext: a saturated pool makes Submit block, and the
// context cancels the wait.
func TestPoolSubmitHonorsContext(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	block := make(chan struct{})
	if err := p.Submit(context.Background(), func() { <-block }); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := p.Submit(ctx, func() {})
	if err == nil {
		t.Fatal("Submit into a saturated pool succeeded before a worker freed")
	}
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	close(block)
}

// TestPoolCloseDrainsAndRejects: Close waits for accepted tasks and later
// Submits fail with ErrPoolClosed.
func TestPoolCloseDrainsAndRejects(t *testing.T) {
	p := NewPool(2)
	var finished atomic.Bool
	if err := p.Submit(context.Background(), func() {
		time.Sleep(20 * time.Millisecond)
		finished.Store(true)
	}); err != nil {
		t.Fatal(err)
	}
	p.Close()
	if !finished.Load() {
		t.Fatal("Close returned before the accepted task finished")
	}
	if err := p.Submit(context.Background(), func() {}); err != ErrPoolClosed {
		t.Fatalf("Submit after Close: %v, want ErrPoolClosed", err)
	}
	p.Close() // second Close is a no-op
}
