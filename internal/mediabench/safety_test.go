package mediabench

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/isa"
)

// TestNoReadBeforeDefOfTemporaries statically checks the generator's
// register discipline with a forward must-be-defined dataflow analysis: a
// caller-saved temporary (t0–t7) read before being written on some path
// would make program output depend on leftover register contents —
// including code addresses, which change under rewriting and would break
// the behavioural-equivalence guarantee of the binary tools. (Two real
// generator bugs of exactly this kind were caught during development; this
// test keeps them out.)
func TestNoReadBeforeDefOfTemporaries(t *testing.T) {
	const nTemps = 8 // t0..t7
	type bits uint16
	all := bits(1<<nTemps - 1)

	for _, spec := range Specs()[:4] {
		obj, err := asm.Assemble(spec.Generate())
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		p, err := cfg.Build(obj, "main")
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range p.Funcs {
			blocks := map[string]*cfg.Block{}
			var order []string
			for _, b := range f.Blocks {
				blocks[b.Label] = b
				order = append(order, b.Label)
			}
			preds := map[string][]string{}
			for _, b := range f.Blocks {
				succs, known := b.Succs()
				if !known {
					// Unresolved jump: give up on this function (its
					// blocks are excluded from compression anyway).
					preds = nil
					break
				}
				for _, s := range succs {
					if blocks[s] != nil {
						preds[s] = append(preds[s], b.Label)
					}
				}
			}
			if preds == nil {
				continue
			}

			// transfer computes defined-out from defined-in; calls clobber
			// conservatively nothing (callee writes are ignored: reading a
			// temp after a call that "defined" it in the callee would be a
			// convention violation too, so we require local definition; v0
			// is not a temp and is exempt).
			transfer := func(b *cfg.Block, in bits) bits {
				d := in
				for _, ins := range b.Insts {
					if ins.Raw {
						continue
					}
					for r := uint32(0); r < nTemps; r++ {
						if cfg.WritesReg(ins, isa.RegT0+r) {
							d |= 1 << r
						}
					}
				}
				return d
			}

			// Fixpoint: defined-in = intersection over predecessors;
			// function entry starts with nothing defined.
			in := map[string]bits{}
			for _, l := range order {
				in[l] = all
			}
			in[f.Blocks[0].Label] = 0
			for changed := true; changed; {
				changed = false
				for _, l := range order {
					v := in[l]
					var meet bits = all
					if len(preds[l]) == 0 {
						meet = 0
					}
					for _, pr := range preds[l] {
						meet &= transfer(blocks[pr], in[pr])
					}
					if l == f.Blocks[0].Label {
						meet = 0
					}
					if meet != v {
						in[l] = meet
						changed = true
					}
				}
			}

			// Check every read against the running defined set.
			for _, b := range f.Blocks {
				d := in[b.Label]
				for _, ins := range b.Insts {
					if ins.Raw {
						continue
					}
					for r := uint32(0); r < nTemps; r++ {
						if cfg.ReadsReg(ins, isa.RegT0+r) && d&(1<<r) == 0 {
							t.Errorf("%s: %s block %s reads t%d before any definition reaches it: %v",
								spec.Name, f.Name, b.Label, r, ins.Inst)
						}
					}
					for r := uint32(0); r < nTemps; r++ {
						if cfg.WritesReg(ins, isa.RegT0+r) {
							d |= 1 << r
						}
					}
				}
			}
		}
	}
}
