// Package mediabench generates the benchmark suite used to evaluate the
// reproduction: eleven deterministic EM32 programs modelled on the
// MediaBench applications of the paper's evaluation (§7, Table 1, Fig. 5).
//
// The real MediaBench sources, the Alpha C compiler, and the paper's audio
// and image inputs are unavailable, so each benchmark is a synthetic
// program whose *structure* matches what profile-guided compression cares
// about: total size (Table 1's instruction counts), the Input→Squeeze
// redundancy (unreachable library code, padding no-ops, duplicated code
// sequences), an 80/20 execution profile (small hot kernels executed per
// input byte, large never- or rarely-executed cold code), jump tables,
// recursion, function-pointer calls, leaf utility functions (buffer-safe
// candidates), and — for pgp — setjmp/longjmp error handling. Programs
// consume a byte stream and produce a deterministic byte stream plus a
// final checksum, so that rewritten binaries can be checked for exact
// behavioural equivalence.
//
// Profiling and timing inputs are distinct, as in the paper (Fig. 5): the
// timing inputs are larger and contain "trigger" bytes that exercise code
// the profiling input never reaches, which is precisely what makes dynamic
// decompression traffic appear at higher cold-code thresholds θ.
package mediabench

import "math/rand"

// Spec describes one synthetic benchmark.
type Spec struct {
	Name string
	Seed int64

	// Size targets, in instructions, from Table 1 of the paper.
	TargetInput   int // before squeeze
	TargetSqueeze int // after squeeze

	// Structure.
	HotFuncs      int     // hot kernel functions called every input byte
	HotLoopIters  int     // inner-loop iterations per kernel call
	ColdFuncs     int     // cold handler functions (trigger-reachable)
	PeriodicFuncs int     // handlers called every 2^k bytes (rare but warm)
	JumpTables    int     // cold switch dispatches
	LeafFrac      float64 // fraction of cold calls aimed at leaf utilities
	Recursive     bool    // include a recursive cold handler
	UsesSetjmp    bool    // pgp-style error handling
	ColdLoop      bool    // cold handlers contain sizable internal loops

	// Redundancy removed by squeeze.
	UnreachFrac float64 // unreachable code fraction of the input size
	NopFrac     float64 // no-op padding fraction of the input size
	DupIdioms   int     // distinct duplicated sequences (procedural abstraction)
	DupCopies   int     // copies of each duplicated sequence

	// Input sizes in bytes.
	ProfBytes int
	TimeBytes int
	// TriggerRate is the approximate fraction of timing-input bytes that
	// are cold-code triggers (the profiling input contains none).
	TriggerRate float64
}

// Specs returns the full benchmark suite, ordered as in Table 1.
func Specs() []Spec {
	return []Spec{
		{
			Name: "adpcm", Seed: 101,
			TargetInput: 18228, TargetSqueeze: 11690,
			HotFuncs: 2, HotLoopIters: 6, ColdFuncs: 28, PeriodicFuncs: 4,
			JumpTables: 2, LeafFrac: 0.10, Recursive: false,
			UnreachFrac: 0.22, NopFrac: 0.08, DupIdioms: 6, DupCopies: 4,
			ProfBytes: 400000, TimeBytes: 200000, TriggerRate: 0.004,
		},
		{
			Name: "epic", Seed: 102,
			TargetInput: 33880, TargetSqueeze: 24769,
			HotFuncs: 3, HotLoopIters: 8, ColdFuncs: 52, PeriodicFuncs: 5,
			JumpTables: 3, LeafFrac: 0.12, Recursive: true,
			UnreachFrac: 0.16, NopFrac: 0.07, DupIdioms: 8, DupCopies: 4,
			ProfBytes: 400000, TimeBytes: 200000, TriggerRate: 0.004,
		},
		{
			Name: "g721_dec", Seed: 103,
			TargetInput: 15089, TargetSqueeze: 12008,
			HotFuncs: 2, HotLoopIters: 5, ColdFuncs: 24, PeriodicFuncs: 4,
			JumpTables: 2, LeafFrac: 0.16, Recursive: false,
			UnreachFrac: 0.10, NopFrac: 0.06, DupIdioms: 5, DupCopies: 3,
			ProfBytes: 400000, TimeBytes: 200000, TriggerRate: 0.004,
		},
		{
			Name: "g721_enc", Seed: 104,
			TargetInput: 15065, TargetSqueeze: 11771,
			HotFuncs: 2, HotLoopIters: 5, ColdFuncs: 24, PeriodicFuncs: 4,
			JumpTables: 2, LeafFrac: 0.22, Recursive: false,
			UnreachFrac: 0.11, NopFrac: 0.07, DupIdioms: 5, DupCopies: 3,
			ProfBytes: 400000, TimeBytes: 200000, TriggerRate: 0.004,
		},
		{
			Name: "gsm", Seed: 105,
			TargetInput: 29789, TargetSqueeze: 21597,
			HotFuncs: 3, HotLoopIters: 7, ColdFuncs: 48, PeriodicFuncs: 5,
			JumpTables: 3, LeafFrac: 0.24, Recursive: false,
			UnreachFrac: 0.17, NopFrac: 0.07, DupIdioms: 7, DupCopies: 4,
			ProfBytes: 400000, TimeBytes: 200000, TriggerRate: 0.004,
		},
		{
			Name: "jpeg_dec", Seed: 106,
			TargetInput: 44094, TargetSqueeze: 37042,
			HotFuncs: 4, HotLoopIters: 8, ColdFuncs: 70, PeriodicFuncs: 6,
			JumpTables: 4, LeafFrac: 0.12, Recursive: true,
			UnreachFrac: 0.08, NopFrac: 0.06, DupIdioms: 8, DupCopies: 3,
			ProfBytes: 400000, TimeBytes: 200000, TriggerRate: 0.004,
		},
		{
			Name: "jpeg_enc", Seed: 107,
			TargetInput: 38701, TargetSqueeze: 32168,
			HotFuncs: 4, HotLoopIters: 8, ColdFuncs: 60, PeriodicFuncs: 6,
			JumpTables: 4, LeafFrac: 0.12, Recursive: true,
			UnreachFrac: 0.08, NopFrac: 0.06, DupIdioms: 7, DupCopies: 3,
			ProfBytes: 400000, TimeBytes: 200000, TriggerRate: 0.004,
		},
		{
			Name: "mpeg2dec", Seed: 108,
			TargetInput: 37833, TargetSqueeze: 27942,
			HotFuncs: 3, HotLoopIters: 9, ColdFuncs: 55, PeriodicFuncs: 6,
			JumpTables: 3, LeafFrac: 0.10, Recursive: false, ColdLoop: true,
			UnreachFrac: 0.15, NopFrac: 0.08, DupIdioms: 8, DupCopies: 4,
			ProfBytes: 400000, TimeBytes: 200000, TriggerRate: 0.004,
		},
		{
			Name: "mpeg2enc", Seed: 109,
			TargetInput: 47152, TargetSqueeze: 36062,
			HotFuncs: 4, HotLoopIters: 9, ColdFuncs: 72, PeriodicFuncs: 6,
			JumpTables: 4, LeafFrac: 0.10, Recursive: false, ColdLoop: true,
			UnreachFrac: 0.14, NopFrac: 0.07, DupIdioms: 9, DupCopies: 4,
			ProfBytes: 400000, TimeBytes: 200000, TriggerRate: 0.004,
		},
		{
			Name: "pgp", Seed: 110,
			TargetInput: 83726, TargetSqueeze: 60003,
			HotFuncs: 4, HotLoopIters: 8, ColdFuncs: 130, PeriodicFuncs: 7,
			JumpTables: 5, LeafFrac: 0.10, Recursive: true, UsesSetjmp: true,
			UnreachFrac: 0.18, NopFrac: 0.08, DupIdioms: 12, DupCopies: 5,
			ProfBytes: 400000, TimeBytes: 200000, TriggerRate: 0.004,
		},
		{
			Name: "rasta", Seed: 111,
			TargetInput: 91359, TargetSqueeze: 65273,
			HotFuncs: 4, HotLoopIters: 8, ColdFuncs: 145, PeriodicFuncs: 7,
			JumpTables: 5, LeafFrac: 0.12, Recursive: true,
			UnreachFrac: 0.18, NopFrac: 0.08, DupIdioms: 12, DupCopies: 5,
			ProfBytes: 400000, TimeBytes: 200000, TriggerRate: 0.004,
		},
	}
}

// SpecByName finds a spec.
func SpecByName(name string) (Spec, bool) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Trigger-byte classes. Bytes below 32 route into cold handlers; the two
// classes model the paper's two sources of runtime decompression cost:
//
//   - semi-rare triggers (0..15) appear exactly once each in the profiling
//     input, so their handlers have execution frequency ~1: they are warm at
//     θ = 0 but flip to cold as θ grows — the code whose compression causes
//     the rising overhead of Figure 7(b);
//   - never-profiled triggers (16..31) are absent from the profiling input,
//     so their handlers are cold even at θ = 0, and extremely rare in the
//     timing input — the small θ = 0 overhead.
const (
	numSemiRare   = 16
	neverProfBase = 16
)

// semiRareProfileCount reports how many times semi-rare trigger k occurs in
// the profiling input. The counts grow geometrically (1, 2, 3, 6, 11, ...),
// spreading the handlers' execution frequencies across two orders of
// magnitude so the cold-code fraction grows *gradually* with θ, as in the
// paper's Figure 4, instead of flipping all once-executed code at a single
// threshold.
func semiRareProfileCount(k int) int {
	n := 1.0
	for i := 0; i < k; i++ {
		n *= 1.7
	}
	if n > 4000 {
		n = 4000
	}
	return int(n)
}

// ProfilingInput generates the byte stream used to collect the execution
// profile: normal bytes plus geometrically-spread occurrences of the
// semi-rare triggers.
func (s Spec) ProfilingInput() []byte {
	r := rand.New(rand.NewSource(s.Seed * 7919))
	out := make([]byte, s.ProfBytes)
	for i := range out {
		out[i] = 64 + byte(r.Intn(160)) // 64..223: never a trigger
	}
	pos := 37
	for k := 0; k < numSemiRare; k++ {
		count := semiRareProfileCount(k)
		for c := 0; c < count && pos < len(out); c++ {
			out[pos] = byte(k)
			pos += 97 + r.Intn(61) // spread placements
			if pos >= len(out) {
				pos -= len(out) - 1
			}
		}
	}
	return out
}

// TimingInput generates the larger evaluation stream: semi-rare triggers at
// TriggerRate, never-profiled triggers at TriggerRate/400 (a handful per
// run — the paper's timing inputs touch never-profiled code rarely enough
// that θ=0 compression costs almost nothing, Figure 7(b)).
func (s Spec) TimingInput() []byte {
	r := rand.New(rand.NewSource(s.Seed*104729 + 1))
	out := make([]byte, s.TimeBytes)
	for i := range out {
		switch x := r.Float64(); {
		case x < s.TriggerRate/400:
			out[i] = neverProfBase + byte(r.Intn(16))
		case x < s.TriggerRate:
			out[i] = byte(r.Intn(numSemiRare))
		default:
			out[i] = 64 + byte(r.Intn(160))
		}
	}
	return out
}

// PathologyInput is a timing input dominated by trigger bytes: profile-cold
// code executes in a tight cycle, the situation the paper describes for the
// SPECint li benchmark (an interprocedural cycle never executed in the
// profile) and for mpeg2dec at K = 128 (a loop split across regions). It
// makes dynamic decompression dominate the run time.
func (s Spec) PathologyInput() []byte {
	r := rand.New(rand.NewSource(s.Seed*31337 + 2))
	out := make([]byte, s.TimeBytes/2)
	for i := range out {
		out[i] = byte(r.Intn(32))
	}
	return out
}
