package mediabench

import (
	"fmt"
	"math/rand"
	"strings"
)

// gen accumulates the assembly text of one benchmark while tracking the
// exact instruction count (la costs two words; everything else one).
type gen struct {
	spec Spec
	r    *rand.Rand
	text strings.Builder
	data strings.Builder
	n    int // instructions emitted so far
	lbl  int

	// No-op padding: one nop is emitted every nopEvery live instructions
	// (mimicking scheduler padding), suppressed inside pattern-sensitive
	// idioms (jump-table dispatch, duplicated runs).
	nopEvery     int
	sinceNop     int
	nopsEmitted  int
	nopBudget    int
	suppressNops bool

	idioms [][]string // duplicated instruction sequences (pre-rendered)
}

// Generate renders the benchmark's assembly source.
func (s Spec) Generate() string {
	g := &gen{spec: s, r: rand.New(rand.NewSource(s.Seed))}
	g.plan()
	g.program()
	var out strings.Builder
	out.WriteString("        .text\n")
	out.WriteString(g.text.String())
	out.WriteString("        .data\n")
	out.WriteString(g.data.String())
	return out.String()
}

// ins emits one instruction (cost 1) and interleaves nop padding. Padding
// is never placed after an unconditional control transfer: the assembler's
// CFG lifter would see it as code falling off the end of a function.
func (g *gen) ins(s string) {
	g.text.WriteString("        " + s + "\n")
	g.n++
	g.sinceNop++
	terminator := strings.HasPrefix(s, "ret") || strings.HasPrefix(s, "br") ||
		strings.HasPrefix(s, "jmp") || strings.HasPrefix(s, "sys  halt") ||
		strings.HasPrefix(s, "sys  longjmp")
	if !g.suppressNops && !terminator && g.nopsEmitted < g.nopBudget && g.sinceNop >= g.nopEvery {
		g.text.WriteString("        nop\n")
		g.n++
		g.nopsEmitted++
		g.sinceNop = 0
	}
}

// la emits an address materialization (cost 2).
func (g *gen) la(reg, sym string) {
	g.text.WriteString(fmt.Sprintf("        la   %s, %s\n", reg, sym))
	g.n += 2
	g.sinceNop += 2
}

func (g *gen) label(l string)     { g.text.WriteString(l + ":\n") }
func (g *gen) funcStart(n string) { g.text.WriteString("        .func " + n + "\n") }

func (g *gen) newLabel(prefix string) string {
	g.lbl++
	return fmt.Sprintf("%s_%d", prefix, g.lbl)
}

// fill emits exactly n straight-line arithmetic instructions over t2–t4.
// Every register is defined before it is read: compiled code never depends
// on stale register contents, and a read of leftover state (for example a
// code address left in a register by a jump-table dispatch) would make the
// program's output depend on code layout, breaking the behavioural
// equivalence the rewriting tools guarantee.
func (g *gen) fill(n int) {
	// Registers t0..t7; every read is preceded by a definition. The mix —
	// varied registers, 8-bit literals, stack traffic, compares — keeps the
	// operand-field entropy of the synthetic code comparable to compiled
	// code, so the split-stream coder's γ lands near the paper's ≈0.66
	// rather than compressing artificially regular filler.
	tregs := []string{"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"}
	defined := map[string]bool{}
	// Loads may only touch slots this very sequence has stored: stale stack
	// memory holds earlier frames' saved return addresses, and reading one
	// would make results depend on code layout.
	var written []int
	pick := func() string { return tregs[g.r.Intn(len(tregs))] }
	pickDef := func() string {
		var have []string
		for _, r := range tregs { // deterministic order
			if defined[r] {
				have = append(have, r)
			}
		}
		if len(have) == 0 {
			return ""
		}
		return have[g.r.Intn(len(have))]
	}
	for i := 0; i < n; i++ {
		// Split long straight-line stretches into realistic basic blocks:
		// compiled code rarely has blocks beyond a few dozen instructions,
		// and the compressible-region partitioning operates on blocks that
		// must fit the runtime buffer.
		if i > 0 && i%24 == 0 && !g.suppressNops {
			g.label(g.newLabel("fb"))
		}
		src := pickDef()
		if src == "" || (len(defined) < 3 && g.r.Intn(3) == 0) {
			dst := pick()
			if !defined["t2"] {
				// t2 is the conventional result register of every emitted
				// fragment (mov t2, v0 / mov t2, a0 follow most fills), so
				// it must be the first register a sequence defines.
				dst = "t2"
			}
			g.ins(fmt.Sprintf("li   %s, %d", dst, g.r.Intn(30000)-15000))
			defined[dst] = true
			continue
		}
		dst := pick()
		switch g.r.Intn(18) {
		case 0, 1:
			g.ins(fmt.Sprintf("add  %s, %d, %s", src, g.r.Intn(256), dst))
		case 2:
			g.ins(fmt.Sprintf("sub  %s, %d, %s", src, g.r.Intn(256), dst))
		case 3:
			g.ins(fmt.Sprintf("xor  %s, %d, %s", src, g.r.Intn(256), dst))
		case 4:
			g.ins(fmt.Sprintf("and  %s, %d, %s", src, g.r.Intn(256), dst))
		case 5:
			g.ins(fmt.Sprintf("sll  %s, %d, %s", src, 1+g.r.Intn(12), dst))
		case 6:
			g.ins(fmt.Sprintf("srl  %s, %d, %s", src, 1+g.r.Intn(12), dst))
		case 7:
			if s2 := pickDef(); s2 != "" {
				g.ins(fmt.Sprintf("add  %s, %s, %s", src, s2, dst))
			} else {
				g.ins(fmt.Sprintf("add  %s, 1, %s", src, dst))
			}
		case 8:
			if s2 := pickDef(); s2 != "" {
				g.ins(fmt.Sprintf("cmplt %s, %s, %s", src, s2, dst))
			} else {
				g.ins(fmt.Sprintf("cmpeq %s, 7, %s", src, dst))
			}
		case 9:
			g.ins(fmt.Sprintf("mul  %s, %d, %s", src, 1+g.r.Intn(100), dst))
		case 10, 12:
			// Scratch-slot stack traffic at varied offsets.
			slot := 12 + 4*g.r.Intn(12)
			g.ins(fmt.Sprintf("stw  %s, %d(sp)", src, slot))
			written = append(written, slot)
			continue
		case 11, 13:
			if len(written) == 0 {
				g.ins(fmt.Sprintf("add  %s, %d, %s", src, g.r.Intn(256), dst))
				defined[dst] = true
				continue
			}
			g.ins(fmt.Sprintf("ldw  %s, %d(sp)", dst, written[g.r.Intn(len(written))]))
		case 14:
			g.ins(fmt.Sprintf("ornot %s, %d, %s", src, g.r.Intn(256), dst))
		case 15:
			g.ins(fmt.Sprintf("sra  %s, %d, %s", src, 1+g.r.Intn(9), dst))
		case 16:
			if s2 := pickDef(); s2 != "" {
				g.ins(fmt.Sprintf("bic  %s, %s, %s", src, s2, dst))
			} else {
				g.ins(fmt.Sprintf("eqv  %s, %d, %s", src, g.r.Intn(256), dst))
			}
		case 17:
			if s2 := pickDef(); s2 != "" {
				g.ins(fmt.Sprintf("mulh %s, %s, %s", src, s2, dst))
			} else {
				g.ins(fmt.Sprintf("cmpule %s, %d, %s", src, g.r.Intn(256), dst))
			}
		}
		defined[dst] = true
	}
}

// plan precomputes idioms and padding budgets from the size targets.
func (g *gen) plan() {
	const idiomLen = 10
	s := g.spec
	// Procedural-abstraction savings: each idiom's copies collapse to calls
	// plus one representative function of idiomLen+1 instructions.
	savings := s.DupIdioms * (s.DupCopies*idiomLen - s.DupCopies - (idiomLen + 1))
	if savings < 0 {
		savings = 0
	}
	redundancy := s.TargetInput - s.TargetSqueeze - savings
	if redundancy < 0 {
		redundancy = 0
	}
	frac := s.NopFrac / (s.NopFrac + s.UnreachFrac)
	g.nopBudget = int(float64(redundancy) * frac)
	live := s.TargetSqueeze + savings
	g.nopEvery = live / (g.nopBudget + 1)
	if g.nopEvery < 2 {
		g.nopEvery = 2
	}

	// Pre-render the duplicated idioms: pure t-register sequences that
	// never touch RA, identical at every copy site.
	ir := rand.New(rand.NewSource(s.Seed * 13))
	for k := 0; k < s.DupIdioms; k++ {
		// The first instruction seeds t5 so the sequence never reads an
		// undefined register; the rest cycle through t5→t6→t7→t5.
		seq := []string{fmt.Sprintf("li   t5, %d", 1+ir.Intn(200))}
		ops := []string{"add", "xor", "sub", "and", "or"}
		for i := 1; i < idiomLen; i++ {
			switch i % 3 {
			case 1:
				seq = append(seq, fmt.Sprintf("%s  t5, %d, t6", ops[ir.Intn(len(ops))], 1+ir.Intn(20)))
			case 2:
				seq = append(seq, fmt.Sprintf("sll  t6, %d, t7", 1+ir.Intn(4)))
			default:
				seq = append(seq, fmt.Sprintf("%s  t6, t7, t5", ops[ir.Intn(len(ops))]))
			}
		}
		g.idioms = append(g.idioms, seq)
	}
}

// emitIdiom writes one copy of idiom k (nop padding suppressed so every
// copy stays byte-identical).
func (g *gen) emitIdiom(k int) {
	g.suppressNops = true
	for _, line := range g.idioms[k] {
		g.ins(line)
	}
	g.suppressNops = false
}

// handlerNames precomputes the cold-handler call tree: handlers are
// generated in index order, and handler i calls the next unclaimed pair,
// giving a forest rooted at the dispatch roots with disjoint subtrees.
type tree struct {
	children [][]int
	owner    []int  // root index whose subtree the handler belongs to
	executed []bool // statically known: does the profiling input reach it?
}

// buildTree assigns each non-root handler to the next parent in index
// order, and — because every dispatch root's trigger byte(s) are fixed —
// computes statically whether the profiling input can reach each handler:
// a child call fires only when bit (childIndex+1) of the argument byte is
// set. This lets the generator aim calls from genuinely never-executed
// code at the cold shared helpers.
func buildTree(n, semiRoots, neverRoots int) *tree {
	roots := semiRoots + neverRoots
	t := &tree{
		children: make([][]int, n),
		owner:    make([]int, n),
		executed: make([]bool, n),
	}
	// Argument bytes that reach each semi root: semi triggers 0..15 map to
	// root byte&(semiRoots-1).
	argBytes := make([][]int, roots)
	for b := 0; b < numSemiRare; b++ {
		r := b & (semiRoots - 1)
		argBytes[r] = append(argBytes[r], b)
	}
	for i := 0; i < roots && i < n; i++ {
		t.owner[i] = i
		t.executed[i] = i < semiRoots // never roots see no profiled trigger
	}
	next := roots
	for i := 0; i < n && next < n; i++ {
		for c := 0; c < 2 && next < n; c++ {
			t.children[i] = append(t.children[i], next)
			t.owner[next] = t.owner[i]
			if t.executed[i] {
				for _, b := range argBytes[t.owner[i]] {
					if b>>(c+1)&1 == 1 {
						t.executed[next] = true
					}
				}
			}
			next++
		}
	}
	return t
}

func (g *gen) program() {
	s := g.spec

	nSemiRoots := numSemiRare
	nNeverRoots := 8
	if s.ColdFuncs < nSemiRoots+nNeverRoots+4 {
		nSemiRoots = s.ColdFuncs / 3
		nNeverRoots = s.ColdFuncs / 4
	}
	nLeaf := 4 + s.ColdFuncs/10
	handlerTree := buildTree(s.ColdFuncs, nSemiRoots, nNeverRoots)

	// ---- main ----
	g.emitMain(nSemiRoots, nNeverRoots)
	// ---- hot kernels ----
	for k := 0; k < s.HotFuncs; k++ {
		g.emitHotKernel(k)
	}
	// ---- trigger dispatch ----
	g.emitDispatch(nSemiRoots, nNeverRoots)
	// ---- periodic handlers ----
	for k := 0; k < s.PeriodicFuncs; k++ {
		g.emitPeriodic(k, nLeaf)
	}
	// ---- init / setup / finalize ----
	g.emitInit()
	g.emitFinalize()
	// ---- leaf utilities ----
	for k := 0; k < nLeaf; k++ {
		g.emitLeaf(k)
	}
	if s.Recursive {
		g.emitRecursive()
	}
	if s.UsesSetjmp {
		g.emitErrRaise()
	}

	// ---- shared cold utilities: called only from cold handlers, so they
	// are compressed themselves and every call to them needs a restore
	// stub — the §2.2 cost the compile-time-stub ablation measures ----
	// Cold shared helpers: referenced only from code the profiling input
	// never reaches, so they are compressed and every call to them needs
	// restore-stub machinery (they are never buffer-safe).
	for k := 0; k < 4; k++ {
		name := fmt.Sprintf("ncutil%d", k)
		g.funcStart(name)
		g.ins("lda  sp, -64(sp)")
		g.ins("stw  ra, 0(sp)")
		g.fill(16 + g.r.Intn(14))
		if k < 3 {
			g.ins("mov  t2, a0")
			g.ins(fmt.Sprintf("bsr  ra, ncutil%d", k+1))
			g.ins("add  v0, 1, t2")
		}
		g.ins("mov  t2, v0")
		g.ins("ldw  ra, 0(sp)")
		g.ins("lda  sp, 64(sp)")
		g.ins("ret")
	}

	nShared := 8
	for k := 0; k < nShared; k++ {
		name := fmt.Sprintf("cutil%d", k)
		g.funcStart(name)
		g.ins("lda  sp, -64(sp)")
		g.ins("stw  ra, 0(sp)")
		g.fill(14 + g.r.Intn(12))
		if k+1 < nShared && k%2 == 0 {
			g.ins("mov  t2, a0")
			g.ins(fmt.Sprintf("bsr  ra, cutil%d", k+1))
			g.ins("add  v0, 1, t2")
		}
		g.ins("mov  t2, v0")
		g.ins("ldw  ra, 0(sp)")
		g.ins("lda  sp, 64(sp)")
		g.ins("ret")
	}

	// ---- cold handlers: budget what remains of the live target ----
	const idiomLen = 10
	savings := s.DupIdioms * (s.DupCopies*idiomLen - s.DupCopies - (idiomLen + 1))
	live := s.TargetSqueeze + savings
	remaining := live - (g.n - g.nopsEmitted)
	perHandler := remaining / s.ColdFuncs
	if perHandler < 24 {
		perHandler = 24
	}
	dupSites := g.dupPlacement(s.ColdFuncs)
	for i := 0; i < s.ColdFuncs; i++ {
		budget := perHandler * (80 + g.r.Intn(40)) / 100
		if i == s.ColdFuncs-1 {
			if left := live - (g.n - g.nopsEmitted) - 30; left > budget {
				budget = left
			}
		}
		owner := handlerTree.owner[i]
		g.emitHandler(i, budget, handlerTree.children[i], nLeaf, dupSites[i], owner, !handlerTree.executed[i])
	}

	// ---- unreachable library code (removed by squeeze) ----
	unreach := s.TargetInput - (g.n) - (g.nopBudget - g.nopsEmitted)
	g.suppressNops = true
	di := 0
	for unreach > 12 {
		sz := 40 + g.r.Intn(60)
		if sz > unreach-4 {
			sz = unreach - 4
		}
		g.funcStart(fmt.Sprintf("dead%d", di))
		g.ins("lda  sp, -64(sp)")
		g.ins("stw  ra, 0(sp)")
		g.fill(sz)
		g.ins("ldw  ra, 0(sp)")
		g.ins("lda  sp, 64(sp)")
		g.ins("ret")
		unreach -= sz + 6
		di++
	}
	g.suppressNops = false

	// ---- data section ----
	g.emitData(nSemiRoots, nNeverRoots)
}

// emitMain writes the program skeleton: init, the hot byte loop with
// trigger and periodic checks, and finalization.
func (g *gen) emitMain(nSemiRoots, nNeverRoots int) {
	s := g.spec
	g.funcStart("main")
	g.ins("lda  sp, -64(sp)")
	g.ins("stw  ra, 0(sp)")
	g.ins("bsr  ra, init")
	if s.UsesSetjmp {
		g.ins("sys  setjmp")
		g.ins("beq  v0, mainloop")
		// longjmp recovery: emit a marker byte, keep processing.
		g.ins("li   a0, 33")
		g.ins("sys  putc")
	}
	g.label("mainloop")
	g.ins("sys  getc")
	g.ins("blt  v0, maineof")
	g.ins("stw  v0, 4(sp)")
	// Hot kernel chain.
	g.ins("mov  v0, a0")
	for k := 0; k < s.HotFuncs; k++ {
		g.ins(fmt.Sprintf("bsr  ra, hot%d", k))
		if k != s.HotFuncs-1 {
			g.ins("mov  v0, a0")
		}
	}
	g.ins("stw  v0, 8(sp)")
	// Trigger check: bytes below 32 enter the cold dispatch.
	g.ins("ldw  t0, 4(sp)")
	g.ins("cmpult t0, 32, t1")
	g.ins("beq  t1, notrig")
	g.ins("ldw  a0, 4(sp)")
	g.ins("bsr  ra, dispatch")
	g.ins("ldw  t2, 8(sp)")
	g.ins("add  v0, t2, t2")
	g.ins("stw  t2, 8(sp)")
	g.label("notrig")
	// Byte counter and periodic handlers at periods 2048 << k.
	g.la("t0", "counter")
	g.ins("ldw  t1, 0(t0)")
	g.ins("add  t1, 1, t1")
	g.ins("stw  t1, 0(t0)")
	for k := 0; k < s.PeriodicFuncs; k++ {
		skip := fmt.Sprintf("noper%d", k)
		// Periods spread the block-frequency spectrum across decades
		// (16, 64, 256, ... bytes), giving the θ sweep of Figures 4 and 6
		// a gradual slope rather than a hot/cold cliff.
		period := 16 << (2 * k)
		g.la("t0", "counter")
		g.ins("ldw  t1, 0(t0)")
		// t2 = counter & (period-1), via a shift pair (the mask exceeds
		// the 8-bit literal field).
		sh := 0
		for p := period; p > 1; p >>= 1 {
			sh++
		}
		g.ins(fmt.Sprintf("sll  t1, %d, t2", 32-sh))
		g.ins(fmt.Sprintf("srl  t2, %d, t2", 32-sh))
		g.ins("bne  t2, " + skip)
		g.ins(fmt.Sprintf("bsr  ra, periodic%d", k))
		g.label(skip)
	}
	// Output the transformed byte.
	g.ins("ldw  a0, 8(sp)")
	g.ins("and  a0, 255, a0")
	g.ins("sys  putc")
	g.ins("br   mainloop")
	g.label("maineof")
	g.ins("bsr  ra, finalize")
	g.ins("ldw  ra, 0(sp)")
	g.ins("lda  sp, 64(sp)")
	g.ins("clr  a0")
	g.ins("sys  halt")
}

// emitHotKernel writes one leaf kernel with an inner loop; these dominate
// the dynamic instruction count.
func (g *gen) emitHotKernel(k int) {
	s := g.spec
	name := fmt.Sprintf("hot%d", k)
	g.funcStart(name)
	g.ins("mov  a0, t0")
	g.ins(fmt.Sprintf("li   t1, %d", s.HotLoopIters))
	g.ins(fmt.Sprintf("li   t2, %d", 17+k*13))
	loop := g.newLabel("hk")
	g.label(loop)
	g.ins("add  t0, t2, t2")
	g.ins(fmt.Sprintf("xor  t2, %d, t2", 5+k))
	g.ins(fmt.Sprintf("sll  t2, %d, t3", 1+k%3))
	g.ins("srl  t3, 2, t3")
	g.ins("add  t2, t3, t2")
	g.ins("sll  t2, 19, t2")
	g.ins("srl  t2, 19, t2")
	g.ins("sub  t1, 1, t1")
	g.ins("bgt  t1, " + loop)
	g.la("t3", "csum")
	g.ins("ldw  t4, 0(t3)")
	g.ins("add  t2, t4, t4")
	g.ins("stw  t4, 0(t3)")
	g.ins("mov  t2, v0")
	g.ins("ret")
}

// emitDispatch routes a trigger byte to its handler root.
func (g *gen) emitDispatch(nSemiRoots, nNeverRoots int) {
	g.funcStart("dispatch")
	g.ins("lda  sp, -32(sp)")
	g.ins("stw  ra, 0(sp)")
	g.ins("stw  a0, 4(sp)")
	g.ins("cmpult a0, 16, t1")
	g.ins("beq  t1, dispnever")
	// Semi-rare: route through a jump table over the low bits.
	g.suppressNops = true
	g.ins(fmt.Sprintf("and  a0, %d, t0", nSemiRoots-1))
	g.ins(fmt.Sprintf("cmpult t0, %d, t1", nSemiRoots))
	g.ins("beq  t1, dispdone")
	g.ins("sll  t0, 2, t1")
	g.la("t2", "disptab")
	g.ins("add  t2, t1, t2")
	g.ins("ldw  t3, 0(t2)")
	g.ins("jmp  (t3)")
	g.suppressNops = false
	for i := 0; i < nSemiRoots; i++ {
		g.label(fmt.Sprintf("dispc%d", i))
		g.ins("ldw  a0, 4(sp)")
		g.ins(fmt.Sprintf("bsr  ra, h%d", i))
		g.ins("br   dispdone")
	}
	g.label("dispnever")
	// Never-profiled: chain of compares.
	for i := 0; i < nNeverRoots; i++ {
		next := fmt.Sprintf("dispn%d", i+1)
		g.ins("ldw  t0, 4(sp)")
		g.ins(fmt.Sprintf("cmpeq t0, %d, t1", neverProfBase+i))
		g.ins("beq  t1, " + next)
		g.ins("ldw  a0, 4(sp)")
		g.ins(fmt.Sprintf("bsr  ra, h%d", nSemiRoots+i))
		g.ins("br   dispdone")
		g.label(next)
	}
	g.ins("ldw  a0, 4(sp)")
	g.ins(fmt.Sprintf("bsr  ra, h%d", nSemiRoots))
	g.label("dispdone")
	g.ins("ldw  ra, 0(sp)")
	g.ins("lda  sp, 32(sp)")
	g.ins("ret")
}

// emitPeriodic writes one rarely-but-regularly executed handler.
func (g *gen) emitPeriodic(k, nLeaf int) {
	name := fmt.Sprintf("periodic%d", k)
	g.funcStart(name)
	g.ins("lda  sp, -64(sp)")
	g.ins("stw  ra, 0(sp)")
	g.ins(fmt.Sprintf("li   t2, %d", 7+k))
	g.fill(20 + g.r.Intn(25))
	g.ins(fmt.Sprintf("li   a0, %d", k+3))
	g.ins(fmt.Sprintf("bsr  ra, leaf%d", k%nLeaf))
	g.la("t3", "csum")
	g.ins("ldw  t4, 0(t3)")
	g.ins("add  v0, t4, t4")
	g.ins("stw  t4, 0(t3)")
	g.ins("ldw  ra, 0(sp)")
	g.ins("lda  sp, 64(sp)")
	g.ins("ret")
}

// emitInit writes the one-shot initialization (frequency 1 in any profile).
func (g *gen) emitInit() {
	g.funcStart("init")
	g.ins("lda  sp, -64(sp)")
	g.ins("stw  ra, 0(sp)")
	g.ins("li   t2, 1")
	g.fill(30 + g.r.Intn(20))
	for k := 0; k < 3; k++ {
		g.ins(fmt.Sprintf("bsr  ra, setup%d", k))
	}
	g.ins("ldw  ra, 0(sp)")
	g.ins("lda  sp, 64(sp)")
	g.ins("ret")
	for k := 0; k < 3; k++ {
		g.funcStart(fmt.Sprintf("setup%d", k))
		g.ins("lda  sp, -64(sp)")
		g.ins(fmt.Sprintf("li   t2, %d", k*11+1))
		g.fill(25 + g.r.Intn(20))
		g.la("t0", fmt.Sprintf("tbl%d", k%4))
		g.ins("stw  t2, 0(t0)")
		g.ins("lda  sp, 64(sp)")
		g.ins("ret")
	}
}

// emitFinalize prints the checksum as eight hex digits.
func (g *gen) emitFinalize() {
	g.funcStart("finalize")
	g.ins("lda  sp, -16(sp)")
	g.ins("stw  ra, 0(sp)")
	g.la("t0", "csum")
	g.ins("ldw  t1, 0(t0)")
	g.ins("li   t2, 8")
	g.label("fnz_loop")
	g.ins("srl  t1, 28, t3")
	g.ins("and  t3, 15, t3")
	g.ins("cmpult t3, 10, t4")
	g.ins("beq  t4, fnz_af")
	g.ins("add  t3, 48, a0")
	g.ins("br   fnz_put")
	g.label("fnz_af")
	g.ins("add  t3, 87, a0")
	g.label("fnz_put")
	g.ins("sys  putc")
	g.ins("sll  t1, 4, t1")
	g.ins("sub  t2, 1, t2")
	g.ins("bgt  t2, fnz_loop")
	g.ins("ldw  ra, 0(sp)")
	g.ins("lda  sp, 16(sp)")
	g.ins("ret")
}

// emitLeaf writes a small pure utility (a buffer-safe candidate).
func (g *gen) emitLeaf(k int) {
	name := fmt.Sprintf("leaf%d", k)
	g.funcStart(name)
	g.ins("lda  sp, -64(sp)")
	g.ins("mov  a0, t2")
	g.fill(4 + g.r.Intn(8))
	g.ins("mov  t2, v0")
	g.ins("lda  sp, 64(sp)")
	g.ins("ret")
}

// emitRecursive writes the bounded-recursion handler whose call site
// exercises restore-stub usage counts.
func (g *gen) emitRecursive() {
	g.funcStart("coldrec")
	g.ins("lda  sp, -16(sp)")
	g.ins("stw  ra, 0(sp)")
	g.ins("stw  a0, 4(sp)")
	g.ins("ble  a0, coldrec_base")
	g.ins("sub  a0, 1, a0")
	g.ins("bsr  ra, coldrec")
	g.ins("ldw  t0, 4(sp)")
	g.ins("add  v0, t0, v0")
	g.ins("br   coldrec_out")
	g.label("coldrec_base")
	g.ins("li   v0, 1")
	g.label("coldrec_out")
	g.ins("ldw  ra, 0(sp)")
	g.ins("lda  sp, 16(sp)")
	g.ins("ret")
}

// emitErrRaise writes the longjmp path used by the pgp-style benchmark.
func (g *gen) emitErrRaise() {
	g.funcStart("errraise")
	g.ins("lda  sp, -64(sp)")
	g.fill(6)
	g.ins("sys  longjmp")
	g.ins("ret")
}

// dupPlacement assigns idiom copies to handler indices.
func (g *gen) dupPlacement(nHandlers int) [][]int {
	out := make([][]int, nHandlers)
	for k := 0; k < g.spec.DupIdioms; k++ {
		for c := 0; c < g.spec.DupCopies; c++ {
			h := g.r.Intn(nHandlers)
			out[h] = append(out[h], k)
		}
	}
	return out
}

// emitHandler writes one cold handler of roughly the requested budget.
// owner is the dispatch root whose subtree this handler belongs to (its
// argument byte is therefore known statically), and unprofiled marks
// handlers the profiling input cannot reach.
func (g *gen) emitHandler(idx, budget int, children []int, nLeaf int, dupIdioms []int, owner int, unprofiled bool) {
	s := g.spec
	name := fmt.Sprintf("h%d", idx)
	g.funcStart(name)
	start := g.n
	g.ins("lda  sp, -64(sp)")
	g.ins("stw  ra, 0(sp)")
	g.ins("stw  a0, 4(sp)")
	g.ins("stw  zero, 8(sp)")

	if s.UsesSetjmp && idx == 0 {
		// Trigger byte 0 raises the longjmp error path.
		g.ins("ldw  t0, 4(sp)")
		g.ins("bne  t0, noerr0")
		g.ins("bsr  ra, errraise")
		g.label("noerr0")
	}

	// Conditional calls to subtree children (bits of the argument choose
	// the path, so different trigger bytes decompress different regions).
	for ci, child := range children {
		skip := g.newLabel("hs")
		g.ins("ldw  t0, 4(sp)")
		g.ins(fmt.Sprintf("srl  t0, %d, t0", ci+1))
		g.ins("and  t0, 1, t0")
		g.ins("beq  t0, " + skip)
		g.ins("ldw  a0, 4(sp)")
		g.ins(fmt.Sprintf("bsr  ra, h%d", child))
		g.ins("ldw  t1, 8(sp)")
		g.ins("add  v0, t1, t1")
		g.ins("stw  t1, 8(sp)")
		g.label(skip)
	}
	// Call mix: real cold code calls helpers roughly every couple dozen
	// instructions, which is what makes restore stubs a significant cost
	// in the paper (§2.2: compile-time stubs would be 13–27% of the
	// never-compressed code). Most callees are the shared cold utilities
	// (not buffer-safe: their return crosses the runtime buffer); a
	// LeafFrac-controlled minority are pure leaves (§6.1's buffer-safe
	// calls that need no stub at all).
	nCalls := 1 + budget/30
	for c := 0; c < nCalls; c++ {
		g.ins("ldw  a0, 4(sp)")
		switch {
		case g.r.Float64() < s.LeafFrac:
			// A pure leaf: the buffer-safe minority of cold calls (§6.1).
			g.ins(fmt.Sprintf("bsr  ra, leaf%d", g.r.Intn(nLeaf)))
		case unprofiled:
			// Never-profiled code calling never-profiled helpers: cold
			// call sites with cold callees, the §2.2 majority.
			g.ins(fmt.Sprintf("bsr  ra, ncutil%d", g.r.Intn(4)))
		default:
			g.ins(fmt.Sprintf("bsr  ra, cutil%d", g.r.Intn(8)))
		}
		g.ins("ldw  t1, 8(sp)")
		g.ins("add  v0, t1, t1")
		g.ins("stw  t1, 8(sp)")
	}
	if s.Recursive && idx%17 == 3 {
		g.ins("li   a0, 5")
		g.ins("bsr  ra, coldrec")
		g.ins("ldw  t1, 8(sp)")
		g.ins("add  v0, t1, t1")
		g.ins("stw  t1, 8(sp)")
	}

	// Jump-table dispatch inside selected handlers.
	if idx < s.JumpTables {
		g.emitSwitch(idx)
	}

	// Cold internal loop (mpeg2-style region-split pathology material).
	if s.ColdLoop && idx%5 == 2 {
		bodyLen := 60 + g.r.Intn(40)
		loop := g.newLabel("hl")
		g.ins("li   t0, 12")
		g.ins("stw  t0, 60(sp)") // loop counter lives outside the t-regs
		g.label(loop)
		g.fill(bodyLen)
		g.ins("ldw  t0, 60(sp)")
		g.ins("sub  t0, 1, t0")
		g.ins("stw  t0, 60(sp)")
		g.ins("bgt  t0, " + loop)
	}

	// Filler to approach the budget, then idiom copies and epilogue.
	used := g.n - start
	tail := 4 // epilogue
	for _, k := range dupIdioms {
		_ = k
		tail += 10
	}
	if rem := budget - used - tail - 4; rem > 0 {
		// Split the filler with a diamond for block structure. The
		// handler's argument is its root's trigger byte, so one arm is
		// never executed during profiling: that arm carries calls to the
		// cold shared helpers — the §2.2 call sites in never-executed code.
		if rem > 26 {
			elseL, join := g.newLabel("he"), g.newLabel("hj")
			coldArmCall := func() {
				g.ins("ldw  a0, 4(sp)")
				g.ins(fmt.Sprintf("bsr  ra, ncutil%d", g.r.Intn(4)))
				g.ins("mov  v0, t2")
			}
			thenCold := owner>>1&1 == 0 // arm taken when bit 1 is set
			g.ins("ldw  t0, 4(sp)")
			g.ins("and  t0, 2, t1")
			g.ins("beq  t1, " + elseL)
			g.ins("li   t2, 5")
			if thenCold {
				coldArmCall()
			}
			g.fill((rem - 13) / 2)
			g.ins("br   " + join)
			g.label(elseL)
			g.ins("li   t2, 9")
			if !thenCold {
				coldArmCall()
			}
			g.fill(rem - 13 - (rem-13)/2)
			g.label(join)
		} else {
			g.ins("li   t2, 5")
			g.fill(rem - 1)
		}
		// Fold the diamond result into the accumulator.
		g.ins("ldw  t3, 8(sp)")
		g.ins("add  t2, t3, t3")
		g.ins("stw  t3, 8(sp)")
	}
	for _, k := range dupIdioms {
		g.emitIdiom(k)
	}
	g.ins("ldw  v0, 8(sp)")
	g.ins("ldw  ra, 0(sp)")
	g.ins("lda  sp, 64(sp)")
	g.ins("ret")
}

// emitSwitch writes a guarded jump-table dispatch over four cases.
func (g *gen) emitSwitch(idx int) {
	tbl := fmt.Sprintf("jtab%d", idx)
	dflt := g.newLabel("swd")
	join := g.newLabel("swj")
	g.ins("ldw  t0, 4(sp)")
	g.ins("srl  t0, 2, t0")
	g.ins("and  t0, 3, t0")
	g.suppressNops = true
	g.ins("cmpult t0, 4, t1")
	g.ins("beq  t1, " + dflt)
	g.ins("sll  t0, 2, t1")
	g.la("t2", tbl)
	g.ins("add  t2, t1, t2")
	g.ins("ldw  t3, 0(t2)")
	g.ins("jmp  (t3)")
	g.suppressNops = false
	for c := 0; c < 4; c++ {
		g.label(fmt.Sprintf("%s_c%d", tbl, c))
		g.ins(fmt.Sprintf("li   t2, %d", c*7+idx))
		g.fill(2 + g.r.Intn(4))
		g.ins("br   " + join)
	}
	g.label(dflt)
	g.ins("clr  t2")
	g.label(join)
	g.ins("ldw  t3, 8(sp)")
	g.ins("add  t2, t3, t3")
	g.ins("stw  t3, 8(sp)")
}

// emitData writes the data section: globals, dispatch tables, jump tables.
func (g *gen) emitData(nSemiRoots, nNeverRoots int) {
	d := &g.data
	d.WriteString("csum:    .word 0\n")
	d.WriteString("counter: .word 0\n")
	for k := 0; k < 4; k++ {
		fmt.Fprintf(d, "tbl%d:    .word ", k)
		for i := 0; i < 16; i++ {
			if i > 0 {
				d.WriteString(", ")
			}
			fmt.Fprintf(d, "%d", (k*31+i*7)%251)
		}
		d.WriteString("\n")
	}
	d.WriteString("disptab: .word ")
	for i := 0; i < nSemiRoots; i++ {
		if i > 0 {
			d.WriteString(", ")
		}
		fmt.Fprintf(d, "dispc%d", i)
	}
	d.WriteString("\n")
	for idx := 0; idx < g.spec.JumpTables; idx++ {
		fmt.Fprintf(d, "jtab%d:   .word jtab%d_c0, jtab%d_c1, jtab%d_c2, jtab%d_c3\n",
			idx, idx, idx, idx, idx)
	}
}
