package mediabench

import (
	"fmt"
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/objfile"
	"repro/internal/profile"
	"repro/internal/squeeze"
	"repro/internal/vm"
)

// shrunk returns the spec with unit-test-sized inputs (the full inputs are
// for the experiment harness).
func shrunk(s Spec) Spec {
	s.ProfBytes = 20000
	s.TimeBytes = 15000
	s.TriggerRate = 0.01
	return s
}

func assembleSpec(t *testing.T, s Spec) (*objfile.Object, *objfile.Image) {
	t.Helper()
	obj, err := asm.Assemble(s.Generate())
	if err != nil {
		t.Fatalf("%s: assemble: %v", s.Name, err)
	}
	im, err := objfile.Link("main", obj)
	if err != nil {
		t.Fatalf("%s: link: %v", s.Name, err)
	}
	return obj, im
}

func TestAllBenchmarksAssembleAndRun(t *testing.T) {
	for _, s := range Specs() {
		s := shrunk(s)
		t.Run(s.Name, func(t *testing.T) {
			_, im := assembleSpec(t, s)
			m := vm.New(im, s.ProfilingInput())
			if err := m.Run(); err != nil {
				t.Fatalf("run: %v", err)
			}
			if m.Status != 0 {
				t.Fatalf("exit status %d", m.Status)
			}
			if len(m.Output) < s.ProfBytes {
				t.Fatalf("output %d bytes for %d input bytes", len(m.Output), s.ProfBytes)
			}
		})
	}
}

func TestBenchmarksDeterministic(t *testing.T) {
	s, _ := SpecByName("adpcm")
	s = shrunk(s)
	_, im := assembleSpec(t, s)
	var first string
	for i := 0; i < 2; i++ {
		m := vm.New(im, s.TimingInput())
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = string(m.Output)
		} else if string(m.Output) != first {
			t.Fatal("outputs differ between identical runs")
		}
	}
	if s.Generate() != s.Generate() {
		t.Fatal("generator is not deterministic")
	}
}

func TestSizeTargetsMatchTable1(t *testing.T) {
	for _, s := range Specs() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			obj, _ := assembleSpec(t, s)
			input := len(obj.Text)
			if ratio := float64(input) / float64(s.TargetInput); ratio < 0.95 || ratio > 1.05 {
				t.Errorf("input size %d vs Table 1 target %d (%.2f)", input, s.TargetInput, ratio)
			}
			p, err := cfg.Build(obj, "main")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := squeeze.Run(p); err != nil {
				t.Fatal(err)
			}
			obj2, err := cfg.Lower(p)
			if err != nil {
				t.Fatal(err)
			}
			sq := len(obj2.Text)
			if ratio := float64(sq) / float64(s.TargetSqueeze); ratio < 0.93 || ratio > 1.07 {
				t.Errorf("squeezed size %d vs Table 1 target %d (%.2f)", sq, s.TargetSqueeze, ratio)
			}
			t.Logf("%-9s input %6d (target %6d)  squeeze %6d (target %6d)",
				s.Name, input, s.TargetInput, sq, s.TargetSqueeze)
		})
	}
}

func TestSqueezePreservesBenchmarkBehaviour(t *testing.T) {
	for _, name := range []string{"adpcm", "gsm", "pgp"} {
		s, _ := SpecByName(name)
		s = shrunk(s)
		t.Run(name, func(t *testing.T) {
			obj, im := assembleSpec(t, s)
			input := s.TimingInput()
			m1 := vm.New(im, input)
			if err := m1.Run(); err != nil {
				t.Fatal(err)
			}
			p, err := cfg.Build(obj, "main")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := squeeze.Run(p); err != nil {
				t.Fatal(err)
			}
			im2, err := cfg.LowerAndLink(p)
			if err != nil {
				t.Fatal(err)
			}
			m2 := vm.New(im2, input)
			if err := m2.Run(); err != nil {
				t.Fatal(err)
			}
			if string(m1.Output) != string(m2.Output) || m1.Status != m2.Status {
				t.Fatal("squeeze changed benchmark behaviour")
			}
		})
	}
}

// squeezeAndProfile squeezes the benchmark and profiles the squeezed image.
func squeezeAndProfile(t *testing.T, s Spec) (*objfile.Object, *objfile.Image, profile.Counts) {
	t.Helper()
	obj, _ := assembleSpec(t, s)
	p, err := cfg.Build(obj, "main")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := squeeze.Run(p); err != nil {
		t.Fatal(err)
	}
	sqObj, err := cfg.Lower(p)
	if err != nil {
		t.Fatal(err)
	}
	im, err := objfile.Link("main", sqObj)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(im, s.ProfilingInput())
	m.EnableProfile()
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return sqObj, im, m.Profile
}

func TestSquashBenchmarksEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline on several benchmarks")
	}
	for _, name := range []string{"adpcm", "g721_enc", "mpeg2dec", "pgp"} {
		s, _ := SpecByName(name)
		s = shrunk(s)
		t.Run(name, func(t *testing.T) {
			sqObj, im, counts := squeezeAndProfile(t, s)
			timing := s.TimingInput()
			base := vm.New(im, timing)
			base.StackCheck = true
			if err := base.Run(); err != nil {
				t.Fatal(err)
			}
			for _, theta := range []float64{0, 0.0001, 0.01} {
				conf := core.DefaultConfig()
				conf.Theta = theta
				out, err := core.Squash(sqObj, counts, conf)
				if err != nil {
					t.Fatalf("theta=%v: %v", theta, err)
				}
				rt, err := core.NewRuntime(out.Meta)
				if err != nil {
					t.Fatal(err)
				}
				m := vm.New(out.Image, timing)
				m.StackCheck = true
				rt.Install(m)
				if err := m.Run(); err != nil {
					t.Fatalf("theta=%v: squashed run: %v", theta, err)
				}
				if string(m.Output) != string(base.Output) || m.Status != base.Status {
					t.Fatalf("theta=%v: behaviour differs", theta)
				}
				for i := range base.SPTrace {
					if base.SPTrace[i] != m.SPTrace[i] {
						t.Fatalf("theta=%v: SP diverges at %d", theta, i)
					}
				}
				red := out.Stats.Reduction()
				slow := float64(m.Cycles) / float64(base.Cycles)
				t.Logf("θ=%-7v reduction %5.1f%%  time ×%.3f  regions %d  decomp %d",
					theta, 100*red, slow, out.Stats.RegionCount, rt.Stats.Decompressions)
			}
		})
	}
}

func TestProfileShapeColdFractions(t *testing.T) {
	// Figure 4 sanity on one benchmark: cold fraction grows with θ and is
	// substantial even at θ=0.
	s, _ := SpecByName("gsm")
	s = shrunk(s)
	sqObj, _, counts := squeezeAndProfile(t, s)
	p, err := cfg.Build(sqObj, "main")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AttachProfile(counts); err != nil {
		t.Fatal(err)
	}
	var prev float64
	for _, theta := range []float64{0, 0.0001, 0.01, 1} {
		cs := profile.IdentifyCold(p, theta)
		frac := cs.ColdFraction()
		if frac < prev {
			t.Errorf("cold fraction fell from %.3f to %.3f at θ=%v", prev, frac, theta)
		}
		prev = frac
		t.Logf("θ=%-7v cold %.1f%%", theta, 100*frac)
	}
	cs := profile.IdentifyCold(p, 0)
	if f := cs.ColdFraction(); f < 0.5 || f > 0.95 {
		t.Errorf("cold fraction at θ=0 is %.2f; expected the bulk of the code", f)
	}
	if f := profile.IdentifyCold(p, 1).ColdFraction(); f != 1 {
		t.Errorf("cold fraction at θ=1 is %.2f", f)
	}
}

func TestInputsHaveDocumentedShape(t *testing.T) {
	s, _ := SpecByName("epic")
	prof := s.ProfilingInput()
	seen := map[byte]int{}
	for _, b := range prof {
		if b < 32 {
			seen[b]++
		}
	}
	for k := 0; k < numSemiRare; k++ {
		want := semiRareProfileCount(k)
		got := seen[byte(k)]
		// Placement wraps at the end of the stream and may overwrite an
		// earlier trigger byte, so allow a small deficit.
		if got == 0 || got > want {
			t.Errorf("semi-rare trigger %d appears %d times in profile, want ≈%d", k, got, want)
		}
	}
	for k := byte(neverProfBase); k < 32; k++ {
		if seen[k] != 0 {
			t.Errorf("never-profiled trigger %d appears in profiling input", k)
		}
	}
	timing := s.TimingInput()
	var semi, never int
	for _, b := range timing {
		switch {
		case b < numSemiRare:
			semi++
		case b < 32:
			never++
		}
	}
	if semi == 0 || never == 0 {
		t.Fatalf("timing input lacks triggers: semi=%d never=%d", semi, never)
	}
	if never > semi {
		t.Errorf("never-profiled triggers (%d) should be much rarer than semi-rare (%d)", never, semi)
	}
}

func TestSpecNamesUniqueAndComplete(t *testing.T) {
	specs := Specs()
	if len(specs) != 11 {
		t.Fatalf("suite has %d programs, the paper uses 11", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		if names[s.Name] {
			t.Errorf("duplicate name %s", s.Name)
		}
		names[s.Name] = true
		if s.TargetInput <= s.TargetSqueeze {
			t.Errorf("%s: input target %d <= squeeze target %d", s.Name, s.TargetInput, s.TargetSqueeze)
		}
	}
	if _, ok := SpecByName("nonesuch"); ok {
		t.Error("SpecByName invented a benchmark")
	}
}

func ExampleSpec_Generate() {
	s, _ := SpecByName("adpcm")
	src := s.Generate()
	fmt.Println(len(src) > 100000)
	// Output: true
}

func TestLoopSplitDiagnosticFires(t *testing.T) {
	// mpeg2dec has sizable loops inside cold handlers; at K=128 they cannot
	// fit one region and the §7 diagnostic must fire.
	s, _ := SpecByName("mpeg2dec")
	s = shrunk(s)
	sqObj, _, counts := squeezeAndProfile(t, s)
	conf := core.DefaultConfig()
	conf.Theta = 0.01
	conf.Regions.K = 128
	out, err := core.Squash(sqObj, counts, conf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Stats.LoopSplitWarnings) == 0 {
		t.Error("no loop-split warnings at K=128 despite cold loops larger than the buffer")
	}
	conf.Regions.K = 4096
	out2, err := core.Squash(sqObj, counts, conf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out2.Stats.LoopSplitWarnings) > len(out.Stats.LoopSplitWarnings) {
		t.Errorf("larger buffer produced more split-loop warnings: %d vs %d",
			len(out2.Stats.LoopSplitWarnings), len(out.Stats.LoopSplitWarnings))
	}
	t.Logf("K=128: %d warnings; K=4096: %d warnings",
		len(out.Stats.LoopSplitWarnings), len(out2.Stats.LoopSplitWarnings))
}
