package unswitch

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/vm"
)

const switchSrc = `
        .text
        .func main
loop:   sys  getc
        blt  v0, done
        sub  v0, 48, t0
        cmpult t0, 4, t1
        beq  t1, bad
        sll  t0, 2, t1
        la   t2, table
        add  t2, t1, t2
        ldw  t3, 0(t2)
        jmp  (t3)
case0:  li   a0, 97
        br   out
case1:  li   a0, 98
        br   out
case2:  li   a0, 99
        br   out
case3:  li   a0, 100
        br   out
bad:    li   a0, 63
out:    sys  putc
        br   loop
done:   clr  a0
        sys  halt
        .data
before: .word 111
table:  .word case0, case1, case2, case3
after:  .word 222
`

func runSrcProgram(t *testing.T, p *cfg.Program, input string) string {
	t.Helper()
	im, err := cfg.LowerAndLink(p)
	if err != nil {
		t.Fatalf("LowerAndLink: %v", err)
	}
	m := vm.New(im, []byte(input))
	if err := m.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return string(m.Output)
}

func build(t *testing.T, src string) *cfg.Program {
	t.Helper()
	obj, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := cfg.Build(obj, "main")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestUnswitchPreservesBehaviour(t *testing.T) {
	input := "0123x32109"
	want := runSrcProgram(t, build(t, switchSrc), input)

	p := build(t, switchSrc)
	st, err := Run(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Unswitched != 1 {
		t.Fatalf("Unswitched = %d, want 1", st.Unswitched)
	}
	got := runSrcProgram(t, p, input)
	if got != want {
		t.Fatalf("output changed: %q vs %q", got, want)
	}
	if want != "abcd?dcba?" {
		t.Fatalf("baseline output = %q", want)
	}
}

func TestUnswitchRemovesJumpAndTable(t *testing.T) {
	p := build(t, switchSrc)
	dataBefore := len(p.Data)
	st, err := Run(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.TableBytesReclaimed != 16 {
		t.Errorf("TableBytesReclaimed = %d, want 16", st.TableBytesReclaimed)
	}
	if len(p.Data) != dataBefore-16 {
		t.Errorf("data size %d, want %d", len(p.Data), dataBefore-16)
	}
	// No indirect jumps or jump tables remain.
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			if b.JT != nil {
				t.Errorf("block %s still has a jump table", b.Label)
			}
		}
	}
	// Surrounding data symbols survive with shifted offsets.
	names := map[string]uint32{}
	for _, s := range p.DataSymbols {
		names[s.Name] = s.Offset
	}
	if _, ok := names["table"]; ok {
		t.Error("table symbol survived")
	}
	if names["after"] != names["before"]+4 {
		t.Errorf("after at %d, before at %d", names["after"], names["before"])
	}
	// Ladder blocks exist.
	found := false
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			if strings.Contains(b.Label, "$usw") {
				found = true
			}
		}
	}
	if !found {
		t.Error("no ladder blocks created")
	}
}

func TestUnswitchRespectsPredicate(t *testing.T) {
	p := build(t, switchSrc)
	st, err := Run(p, func(b *cfg.Block) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if st.Unswitched != 0 || st.Skipped != 1 {
		t.Fatalf("stats = %+v, want skip", st)
	}
}

func TestUnswitchDataAccessStillWorks(t *testing.T) {
	// The "after" word moves down by 16 bytes; a program reading it via la
	// must still see 222.
	src := switchSrc + `
`
	p := build(t, src)
	// Patch main to read "after" and print its low byte at exit... easier:
	// verify via a separate program exercising data after unswitch.
	if _, err := Run(p, nil); err != nil {
		t.Fatal(err)
	}
	src2 := `
        .text
        .func main
        sys  getc
        sub  v0, 48, t0
        cmpult t0, 2, t1
        beq  t1, bad
        sll  t0, 2, t1
        la   t2, table
        add  t2, t1, t2
        ldw  t3, 0(t2)
        jmp  (t3)
case0:  li   a0, 48
        br   out
case1:  li   a0, 49
        br   out
bad:    li   a0, 63
out:    sys  putc
        la   t4, marker
        ldw  a0, 0(t4)
        sys  putc
        clr  a0
        sys  halt
        .data
table:  .word case0, case1
marker: .word 77            ; 'M'
`
	p2 := build(t, src2)
	want := runSrcProgram(t, build(t, src2), "1")
	if _, err := Run(p2, nil); err != nil {
		t.Fatal(err)
	}
	got := runSrcProgram(t, p2, "1")
	if got != want || got != "1M" {
		t.Fatalf("data access broken after table reclaim: %q vs %q", got, want)
	}
}

func TestSingleEntryTable(t *testing.T) {
	src := `
        .text
        .func main
        sys  getc
        clr  t0
        sll  t0, 2, t1
        la   t2, table
        add  t2, t1, t2
        ldw  t3, 0(t2)
        jmp  (t3)
only:   li   a0, 89
        sys  putc
        clr  a0
        sys  halt
        .data
table:  .word only
`
	p := build(t, src)
	st, err := Run(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Unswitched != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if got := runSrcProgram(t, p, "x"); got != "Y" {
		t.Fatalf("output = %q", got)
	}
}
