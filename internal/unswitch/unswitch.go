// Package unswitch implements the paper's jump-table elimination (§6.2).
// Code regions containing indirect jumps through a jump table cannot simply
// be moved into the runtime buffer, because the table's addresses would
// point at the region's original location. The paper offers two options —
// updating the table or "unswitching" the region to use a series of
// conditional branches — and, like the paper's implementation, this package
// uses unswitching, after which the jump table's data space is reclaimed.
package unswitch

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/isa"
	"repro/internal/objfile"
)

// Stats reports what the pass did.
type Stats struct {
	Unswitched          int // jump-table dispatches rewritten
	TableBytesReclaimed int // data bytes freed by removed tables
	Skipped             int // resolvable tables left alone (predicate or pattern mismatch)
}

// Run unswitches every block accepted by shouldUnswitch that ends in a
// resolved jump-table dispatch matching the standard dispatch idiom:
//
//	sll  rI, 2, rT      ; scale the case index
//	ldah rB, hi(table)  ;\ la rB, table
//	lda  rB, lo(rB)     ;/
//	add  rB/rT, rT/rB, rB2
//	ldw  rX, 0(rB2)
//	jmp  (rX)
//
// The six instructions are replaced by a ladder of compare-and-branch
// blocks on rI. Tables no longer referenced are removed from the data
// section (the paper: "the space for the jump table can be reclaimed").
func Run(p *cfg.Program, shouldUnswitch func(*cfg.Block) bool) (*Stats, error) {
	st := &Stats{}
	var reclaim []string // table symbols whose dispatch was removed
	for _, f := range p.Funcs {
		for bi := 0; bi < len(f.Blocks); bi++ {
			b := f.Blocks[bi]
			if b.JT == nil || (shouldUnswitch != nil && !shouldUnswitch(b)) {
				if b.JT != nil {
					st.Skipped++
				}
				continue
			}
			m, ok := matchDispatch(b)
			if !ok {
				st.Skipped++
				continue
			}
			ladder := buildLadder(p, f, b, m)
			// Splice the ladder blocks right after b.
			rest := append([]*cfg.Block{}, f.Blocks[bi+1:]...)
			f.Blocks = append(f.Blocks[:bi+1], append(ladder, rest...)...)
			bi += len(ladder)
			st.Unswitched++
			reclaim = append(reclaim, m.tableSym)
		}
	}
	for _, sym := range reclaim {
		if n, err := reclaimTable(p, sym); err == nil {
			st.TableBytesReclaimed += n
		}
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("unswitch: output invalid: %w", err)
	}
	return st, nil
}

type dispatch struct {
	start    int // index of the sll instruction within the block
	indexReg uint32
	scratch  uint32
	tableSym string
}

// matchDispatch matches the six-instruction dispatch idiom at the end of b.
func matchDispatch(b *cfg.Block) (dispatch, bool) {
	n := len(b.Insts)
	if n < 6 {
		return dispatch{}, false
	}
	i := b.Insts[n-6:]
	sll, hi, lo, add, ldw, jmp := i[0], i[1], i[2], i[3], i[4], i[5]
	if jmp.Raw || jmp.Format != isa.FormatJump || jmp.JFunc != isa.JmpJMP {
		return dispatch{}, false
	}
	x := jmp.RB
	if ldw.Op != isa.OpLDW || ldw.RA != x || ldw.Disp != 0 {
		return dispatch{}, false
	}
	b2 := ldw.RB
	if add.Op != isa.OpIntA || add.Format != isa.FormatOpReg || add.Func != isa.FnADD || add.RC != b2 {
		return dispatch{}, false
	}
	if lo.Kind != cfg.TargetLo16 || hi.Kind != cfg.TargetHi16 || hi.Target != lo.Target {
		return dispatch{}, false
	}
	base := lo.RA
	var t uint32
	switch {
	case add.RA == base:
		t = add.RB
	case add.RB == base:
		t = add.RA
	default:
		return dispatch{}, false
	}
	if sll.Op != isa.OpIntS || sll.Func != isa.FnSLL || sll.Format != isa.FormatOpLit ||
		sll.Lit != 2 || sll.RC != t {
		return dispatch{}, false
	}
	if len(b.JT.Targets) > 256 {
		return dispatch{}, false // literal compare operand limit
	}
	return dispatch{
		start:    n - 6,
		indexReg: sll.RA,
		scratch:  t,
		tableSym: lo.Target,
	}, true
}

// buildLadder rewrites b's dispatch into compare-and-branch blocks and
// returns the new blocks to insert after b.
func buildLadder(p *cfg.Program, f *cfg.Func, b *cfg.Block, m dispatch) []*cfg.Block {
	targets := b.JT.Targets
	freq := b.Freq
	b.Insts = b.Insts[:m.start]
	b.JT = nil

	cmpBr := func(caseIdx int, target string) []cfg.Inst {
		return []cfg.Inst{
			{Inst: isa.OpL(isa.OpIntA, m.indexReg, uint32(caseIdx), isa.FnCMPEQ, m.scratch)},
			{Inst: isa.Br(isa.OpBNE, m.scratch, 0), Kind: cfg.TargetBranch, Target: target},
		}
	}

	if len(targets) == 1 {
		b.Insts = append(b.Insts, cfg.Inst{
			Inst: isa.Br(isa.OpBR, isa.RegZero, 0), Kind: cfg.TargetBranch, Target: targets[0],
		})
		b.FallsTo = ""
		recount(b, freq)
		return nil
	}

	// First compare stays in b; subsequent compares form new blocks.
	b.Insts = append(b.Insts, cmpBr(0, targets[0])...)
	var ladder []*cfg.Block
	for k := 1; k < len(targets)-1; k++ {
		nb := &cfg.Block{
			Label: fmt.Sprintf("%s$usw%d", b.Label, k),
			Insts: cmpBr(k, targets[k]),
			Freq:  freq,
		}
		ladder = append(ladder, nb)
	}
	final := &cfg.Block{
		Label: fmt.Sprintf("%s$usw%d", b.Label, len(targets)-1),
		Insts: []cfg.Inst{{
			Inst: isa.Br(isa.OpBR, isa.RegZero, 0), Kind: cfg.TargetBranch, Target: targets[len(targets)-1],
		}},
		Freq: freq,
	}
	ladder = append(ladder, final)
	b.FallsTo = ladder[0].Label
	for i := 0; i < len(ladder)-1; i++ {
		ladder[i].FallsTo = ladder[i+1].Label
	}
	recount(b, freq)
	for _, nb := range ladder {
		recount(nb, freq)
	}
	return ladder
}

func recount(b *cfg.Block, freq uint64) {
	b.Freq = freq
	b.Weight = freq * uint64(len(b.Insts))
}

// reclaimTable removes the jump table at symbol sym from the data section
// when nothing else references it. It returns the number of bytes freed.
func reclaimTable(p *cfg.Program, sym string) (int, error) {
	// Any surviving la of the symbol blocks reclamation.
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Insts {
				if in.Kind != cfg.TargetNone && in.Target == sym {
					return 0, fmt.Errorf("unswitch: table %s still referenced", sym)
				}
			}
		}
	}
	var start uint32
	found := false
	for _, s := range p.DataSymbols {
		if s.Name == sym {
			start, found = s.Offset, true
			break
		}
	}
	if !found {
		return 0, fmt.Errorf("unswitch: table symbol %s not found", sym)
	}
	// Extent: consecutive relocated words from start until the next symbol.
	end := uint32(len(p.Data))
	for _, s := range p.DataSymbols {
		if s.Offset > start && s.Offset < end {
			end = s.Offset
		}
	}
	hasReloc := func(off uint32) bool {
		for _, r := range p.DataRelocs {
			if r.Offset == off {
				return true
			}
		}
		return false
	}
	extent := start
	for extent+4 <= end && hasReloc(extent) {
		extent += 4
	}
	n := int(extent - start)
	if n == 0 {
		return 0, nil
	}
	// Remove bytes and shift everything after.
	p.Data = append(p.Data[:start], p.Data[extent:]...)
	var relocs []objfile.Reloc
	for _, r := range p.DataRelocs {
		if r.Offset >= start && r.Offset < extent {
			continue
		}
		if r.Offset >= extent {
			r.Offset -= uint32(n)
		}
		relocs = append(relocs, r)
	}
	p.DataRelocs = relocs
	var syms []objfile.Symbol
	for _, s := range p.DataSymbols {
		if s.Name == sym {
			continue
		}
		if s.Offset >= extent {
			s.Offset -= uint32(n)
		}
		syms = append(syms, s)
	}
	p.DataSymbols = syms
	return n, nil
}
