package huffman

import "testing"

// benchStream builds a canonical code over a 256-value alphabet with a
// skewed (geometric-ish) frequency profile — the shape of real operand
// streams — and encodes a deterministic pseudo-random symbol sequence.
func benchStream() (*Code, []byte, int) {
	freq := map[uint32]uint64{}
	for v := uint32(0); v < 256; v++ {
		freq[v] = 1 + uint64(1)<<(20-v/16)
	}
	c := Build(freq)
	const n = 8192
	var w BitWriter
	state := uint64(0x2545F4914F6CDD1D)
	syms := make([]uint32, n)
	for i := 0; i < n; i++ {
		// xorshift; bias toward small (frequent) symbols.
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		v := uint32(state) % 256
		if state&3 != 0 {
			v %= 24
		}
		syms[i] = v
		if err := c.Encode(&w, v); err != nil {
			panic(err)
		}
	}
	return c, w.Bytes(), n
}

// BenchmarkHuffmanDecode measures per-symbol canonical Huffman decode cost:
// "table" is the first-K-bits table decoder, "tree" the paper's bit-at-a-time
// DECODE() loop it must match bit for bit. Paired sub-benchmarks in one
// process make the speedup ratio robust against machine-load noise.
func BenchmarkHuffmanDecode(b *testing.B) {
	c, blob, n := benchStream()
	for _, mode := range []struct {
		name   string
		decode func(*BitReader) (uint32, error)
	}{{"table", c.Decode}, {"tree", c.DecodeTree}} {
		b.Run(mode.name, func(b *testing.B) {
			r := NewBitReader(blob)
			b.ResetTimer()
			left := 0
			for i := 0; i < b.N; i++ {
				if left == 0 {
					r.Seek(0)
					left = n
				}
				left--
				if _, err := mode.decode(r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBitReaderReadBits measures raw multi-bit field extraction with a
// width mix that straddles byte boundaries.
func BenchmarkBitReaderReadBits(b *testing.B) {
	buf := make([]byte, 1<<16)
	state := uint64(0x9E3779B97F4A7C15)
	for i := range buf {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		buf[i] = byte(state)
	}
	widths := [8]uint{3, 11, 7, 16, 1, 21, 5, 13}
	r := NewBitReader(buf)
	limit := 8*len(buf) - 64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := widths[i&7]
		if r.BitsRead() > limit {
			r.Seek(0)
		}
		_ = r.ReadBits(w)
	}
}
