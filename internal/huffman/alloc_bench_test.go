package huffman

import "testing"

// BenchmarkBitIOAlloc is the paired allocation benchmark for the bit I/O
// layer: one op encodes a ~2 Kbit stream and decodes it back. "pooled" runs
// the Get/Put cycle (steady-state zero allocations once the pool is warm);
// "fresh" allocates a new writer and reader per op, the pre-pool behaviour.
// CI gates the pooled allocs/op ceiling and the fresh/pooled reduction via
// benchhist's alloc gates.
func BenchmarkBitIOAlloc(b *testing.B) {
	c, blob, n := benchStream()
	_ = blob
	run := func(b *testing.B, pooled bool) {
		b.Helper()
		SetPooling(pooled)
		defer SetPooling(true)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w := GetWriter(64)
			for s := 0; s < 256; s++ {
				if err := c.Encode(w, uint32(s%24)); err != nil {
					b.Fatal(err)
				}
			}
			r := GetReader(w.buf) // whole bytes only; no Bytes() leak
			for s := 0; s < 200; s++ {
				if _, err := c.Decode(r); err != nil {
					b.Fatal(err)
				}
			}
			PutReader(r)
			PutWriter(w)
		}
		_ = n
	}
	b.Run("pooled", func(b *testing.B) { run(b, true) })
	b.Run("fresh", func(b *testing.B) { run(b, false) })
}
