package huffman

import (
	"math/rand"
	"testing"
)

// decodeBoth runs the table-driven decoder and the paper's tree decoder over
// the same bitstream and asserts that every decoded value, every error, and
// every bits-consumed count agree.
func decodeBoth(t *testing.T, c *Code, stream []byte, n int) {
	t.Helper()
	fast := NewBitReader(stream)
	tree := NewBitReader(stream)
	for i := 0; i < n; i++ {
		fv, ferr := c.Decode(fast)
		tv, terr := c.DecodeTree(tree)
		if (ferr == nil) != (terr == nil) {
			t.Fatalf("symbol %d: Decode err=%v, DecodeTree err=%v", i, ferr, terr)
		}
		if ferr != nil {
			if fast.BitsRead() != tree.BitsRead() {
				t.Fatalf("symbol %d: error at bit %d (table) vs %d (tree)", i, fast.BitsRead(), tree.BitsRead())
			}
			return
		}
		if fv != tv {
			t.Fatalf("symbol %d: Decode=%d, DecodeTree=%d", i, fv, tv)
		}
		if fast.BitsRead() != tree.BitsRead() {
			t.Fatalf("symbol %d: value %d consumed %d bits (table) vs %d (tree)", i, fv, fast.BitsRead(), tree.BitsRead())
		}
	}
}

// encodeStream encodes vals with c and returns the packed bytes.
func encodeStream(t *testing.T, c *Code, vals []uint32) []byte {
	t.Helper()
	var w BitWriter
	for _, v := range vals {
		if err := c.Encode(&w, v); err != nil {
			t.Fatalf("encode %d: %v", v, err)
		}
	}
	return w.Bytes()
}

// TestDecodeEquivSkewed covers the common case: a large skewed alphabet where
// short codes hit the direct table and long ones take the table's escape path.
func TestDecodeEquivSkewed(t *testing.T) {
	freq := make(map[uint32]uint64)
	for v := uint32(0); v < 300; v++ {
		freq[v] = 1 + uint64(1)<<(24-v/13)
	}
	c := Build(freq)
	rng := rand.New(rand.NewSource(7))
	vals := make([]uint32, 5000)
	for i := range vals {
		// Bias toward frequent symbols but include every rank.
		if rng.Intn(4) > 0 {
			vals[i] = uint32(rng.Intn(30))
		} else {
			vals[i] = uint32(rng.Intn(300))
		}
	}
	decodeBoth(t, c, encodeStream(t, c, vals), len(vals))
}

// TestDecodeEquivDeepCodes uses Fibonacci-like frequencies to force maximally
// unbalanced codes far deeper than DecodeTableBits, so every long-code escape
// in the table decoder is exercised.
func TestDecodeEquivDeepCodes(t *testing.T) {
	freq := make(map[uint32]uint64)
	a, b := uint64(1), uint64(1)
	for v := uint32(0); v < 40; v++ {
		freq[v] = a
		a, b = b, a+b
	}
	c := Build(freq)
	if c.MaxLen() <= DecodeTableBits {
		t.Fatalf("test expects codes deeper than the table (max len %d)", c.MaxLen())
	}
	rng := rand.New(rand.NewSource(8))
	vals := make([]uint32, 3000)
	for i := range vals {
		vals[i] = uint32(rng.Intn(40)) // uniform: deep codes appear often
	}
	decodeBoth(t, c, encodeStream(t, c, vals), len(vals))
}

// TestDecodeEquivSingleValue checks the degenerate one-symbol code.
func TestDecodeEquivSingleValue(t *testing.T) {
	c := Build(map[uint32]uint64{42: 100})
	vals := make([]uint32, 64)
	for i := range vals {
		vals[i] = 42
	}
	decodeBoth(t, c, encodeStream(t, c, vals), len(vals))
}

// TestDecodeEquivTwoValues checks the minimal two-symbol code (1-bit codes).
func TestDecodeEquivTwoValues(t *testing.T) {
	c := Build(map[uint32]uint64{3: 10, 9: 1})
	rng := rand.New(rand.NewSource(9))
	vals := make([]uint32, 500)
	for i := range vals {
		if rng.Intn(3) == 0 {
			vals[i] = 9
		} else {
			vals[i] = 3
		}
	}
	decodeBoth(t, c, encodeStream(t, c, vals), len(vals))
}

// TestDecodeEquivGarbageStreams feeds random bytes (not a valid encoding of
// anything in particular) to both decoders: whatever each bit pattern decodes
// to — values or ErrBadCode — must agree symbol for symbol.
func TestDecodeEquivGarbageStreams(t *testing.T) {
	freq := make(map[uint32]uint64)
	a, b := uint64(1), uint64(1)
	for v := uint32(0); v < 30; v++ {
		freq[v] = a
		a, b = b, a+b
	}
	c := Build(freq)
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 50; trial++ {
		stream := make([]byte, 64)
		rng.Read(stream)
		decodeBoth(t, c, stream, 1000) // stops at first error or after 1000 symbols
	}
}

// TestDecodeEquivIrregularTable deserializes a code whose N histogram
// violates the Kraft equality (possible with hand-built or corrupt tables).
// buildDecoder must refuse the fast table for it, and Decode must still agree
// with DecodeTree on every stream.
func TestDecodeEquivIrregularTable(t *testing.T) {
	good := Build(map[uint32]uint64{1: 8, 2: 4, 3: 2, 4: 1, 5: 1})
	data, err := good.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var c Code
	if err := c.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	// Inflate the histogram: claim one more codeword of the max length than
	// the tree has room for (a Kraft violation). buildDecoder must reject the
	// fast table and route every Decode through the reference decoder, so
	// both paths see the exact same (nonsensical) canonical arithmetic.
	c.N[c.MaxLen()]++
	c.D = append(c.D, 99)
	if c.regular() {
		t.Fatal("inflated histogram still reads as regular")
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		stream := make([]byte, 32)
		rng.Read(stream)
		decodeBoth(t, &c, stream, 500)
	}
}

// TestDecodeEquivAfterUnmarshal makes sure a round-tripped code decodes
// identically via both paths (the decoder tables are rebuilt lazily after
// UnmarshalBinary resets them).
func TestDecodeEquivAfterUnmarshal(t *testing.T) {
	freq := make(map[uint32]uint64)
	for v := uint32(0); v < 100; v++ {
		freq[v] = uint64(v*v + 1)
	}
	orig := Build(freq)
	data, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var c Code
	if err := c.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	vals := make([]uint32, 2000)
	for i := range vals {
		vals[i] = uint32(rng.Intn(100))
	}
	decodeBoth(t, &c, encodeStream(t, orig, vals), len(vals))
}
