package huffman

import (
	"encoding/binary"
	"fmt"
)

// The compressed program stores, for each stream, the "code representation
// (the array N[i]) and value list (the array D[j])" (paper, §3). This file
// gives those arrays a compact byte encoding so that their space cost is
// charged against the compressed program size exactly as in the paper.

// MarshalBinary encodes the code tables as:
//
//	uvarint maxLen
//	uvarint N[1] .. N[maxLen]
//	uvarint delta-encoded D values per length class (ascending within class)
func (c *Code) MarshalBinary() ([]byte, error) {
	buf := binary.AppendUvarint(nil, uint64(c.MaxLen()))
	for i := 1; i <= c.MaxLen(); i++ {
		buf = binary.AppendUvarint(buf, uint64(c.N[i]))
	}
	j := 0
	for i := 1; i <= c.MaxLen(); i++ {
		prev := uint64(0)
		for k := 0; k < c.N[i]; k++ {
			v := uint64(c.D[j])
			var delta uint64
			if k == 0 {
				delta = v
			} else {
				delta = v - prev // ascending within a length class
			}
			buf = binary.AppendUvarint(buf, delta)
			prev = v
			j++
		}
	}
	if j != len(c.D) {
		return nil, fmt.Errorf("huffman: N sums to %d codewords but D has %d values", j, len(c.D))
	}
	return buf, nil
}

// UnmarshalBinary decodes tables produced by MarshalBinary.
func (c *Code) UnmarshalBinary(data []byte) error {
	pos := 0
	next := func() (uint64, error) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("huffman: truncated code table at byte %d", pos)
		}
		pos += n
		return v, nil
	}
	maxLen, err := next()
	if err != nil {
		return err
	}
	if maxLen > MaxCodeLen {
		return fmt.Errorf("huffman: declared max codeword length %d exceeds limit %d", maxLen, MaxCodeLen)
	}
	c.N = make([]int, maxLen+1)
	total := 0
	for i := 1; i <= int(maxLen); i++ {
		n, err := next()
		if err != nil {
			return err
		}
		c.N[i] = int(n)
		total += int(n)
		if total > 1<<26 {
			return fmt.Errorf("huffman: implausible codeword count %d", total)
		}
	}
	c.D = make([]uint32, 0, total)
	for i := 1; i <= int(maxLen); i++ {
		var prev uint64
		for k := 0; k < c.N[i]; k++ {
			d, err := next()
			if err != nil {
				return err
			}
			var v uint64
			if k == 0 {
				v = d
			} else {
				v = prev + d
			}
			if v > 1<<32-1 {
				return fmt.Errorf("huffman: value %d exceeds 32 bits", v)
			}
			c.D = append(c.D, uint32(v))
			prev = v
		}
	}
	if pos != len(data) {
		return fmt.Errorf("huffman: %d trailing bytes after code table", len(data)-pos)
	}
	c.enc = nil
	c.dec = nil
	return nil
}

// TableSize reports the serialized size in bytes of the code's N and D
// arrays — the per-stream table overhead counted against compression.
func (c *Code) TableSize() int {
	b, err := c.MarshalBinary()
	if err != nil {
		return 0
	}
	return len(b)
}
