package huffman

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestBitWriterAppendMatchesSequential checks that encoding sections into
// private writers and concatenating with Append yields the byte stream a
// single sequential writer produces, at every alignment.
func TestBitWriterAppendMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		nSections := 1 + r.Intn(5)
		sections := make([][]uint8, nSections)
		for i := range sections {
			bits := make([]uint8, r.Intn(40))
			for j := range bits {
				bits[j] = uint8(r.Intn(2))
			}
			sections[i] = bits
		}

		var seq BitWriter
		for _, bits := range sections {
			for _, b := range bits {
				seq.WriteBit(b)
			}
		}

		var cat BitWriter
		for _, bits := range sections {
			var part BitWriter
			for _, b := range bits {
				part.WriteBit(b)
			}
			cat.Append(&part)
		}

		if seq.Len() != cat.Len() {
			t.Fatalf("trial %d: lengths differ: %d vs %d", trial, seq.Len(), cat.Len())
		}
		if !bytes.Equal(seq.Bytes(), cat.Bytes()) {
			t.Fatalf("trial %d: streams differ", trial)
		}
	}
}

func TestCodePrimeMatchesLazyEncode(t *testing.T) {
	freq := map[uint32]uint64{1: 5, 2: 9, 7: 1, 100: 44}
	a, b := Build(freq), Build(freq)
	a.Prime()
	var wa, wb BitWriter
	for _, v := range []uint32{100, 7, 2, 1, 100} {
		if err := a.Encode(&wa, v); err != nil {
			t.Fatal(err)
		}
		if err := b.Encode(&wb, v); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(wa.Bytes(), wb.Bytes()) {
		t.Fatal("primed and lazy encoders disagree")
	}
}
