// Package huffman implements the canonical Huffman coding scheme of
// Debray & Evans (PLDI 2002, §3). A canonical code assigns the same codeword
// *lengths* as an ordinary Huffman code but chooses the codewords
// deterministically from the length histogram N[i], so that the decoder
// needs only the histogram and the value array D — "a codeword can be
// rapidly decoded using the arrays N[i] and D[j]".
package huffman

// BitWriter accumulates a most-significant-bit-first bit stream.
type BitWriter struct {
	buf  []byte
	bits uint8 // valid bits in cur
	cur  byte
	n    int // total bits written
}

// WriteBits appends the low width bits of v, most significant first.
func (w *BitWriter) WriteBits(v uint64, width uint) {
	for i := int(width) - 1; i >= 0; i-- {
		w.WriteBit(uint8(v >> uint(i) & 1))
	}
}

// WriteBit appends a single bit.
func (w *BitWriter) WriteBit(b uint8) {
	w.cur = w.cur<<1 | b&1
	w.bits++
	w.n++
	if w.bits == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.bits = 0, 0
	}
}

// Len reports the number of bits written so far.
func (w *BitWriter) Len() int { return w.n }

// Append replays every bit written to src onto w, producing exactly the
// stream the same WriteBit calls would have. It lets independent sections
// be encoded concurrently into private writers and then concatenated into
// one bit stream; when w is byte-aligned the bulk of src is copied whole.
func (w *BitWriter) Append(src *BitWriter) {
	if w.bits == 0 {
		w.buf = append(w.buf, src.buf...)
		w.n += 8 * len(src.buf)
	} else {
		for _, b := range src.buf {
			w.WriteBits(uint64(b), 8)
		}
	}
	if src.bits > 0 {
		w.WriteBits(uint64(src.cur), uint(src.bits))
	}
}

// Bytes flushes the final partial byte (padding with zero bits) and returns
// the accumulated buffer. The writer remains usable; further writes continue
// from the unpadded position only if the bit count was already a multiple of
// eight, so callers should treat Bytes as terminal.
func (w *BitWriter) Bytes() []byte {
	out := w.buf
	if w.bits > 0 {
		out = append(out, w.cur<<(8-w.bits))
	}
	return out
}

// BitReader consumes a most-significant-bit-first bit stream and counts the
// bits it reads, which the simulator's cost model uses to charge
// decompression work.
type BitReader struct {
	buf []byte
	pos int // bit position
}

// NewBitReader returns a reader over buf.
func NewBitReader(buf []byte) *BitReader { return &BitReader{buf: buf} }

// ReadBit returns the next bit. Reading past the end returns zero bits,
// matching the zero padding emitted by BitWriter.Bytes; decoders terminate
// on an explicit sentinel value rather than on end of stream.
func (r *BitReader) ReadBit() uint8 {
	byteIdx := r.pos >> 3
	if byteIdx >= len(r.buf) {
		r.pos++
		return 0
	}
	b := r.buf[byteIdx] >> (7 - uint(r.pos&7)) & 1
	r.pos++
	return b
}

// ReadBits reads width bits, most significant first.
func (r *BitReader) ReadBits(width uint) uint64 {
	var v uint64
	for i := uint(0); i < width; i++ {
		v = v<<1 | uint64(r.ReadBit())
	}
	return v
}

// BitsRead reports the number of bits consumed so far.
func (r *BitReader) BitsRead() int { return r.pos }

// Seek positions the reader at an absolute bit offset.
func (r *BitReader) Seek(bitPos int) { r.pos = bitPos }
