// Package huffman implements the canonical Huffman coding scheme of
// Debray & Evans (PLDI 2002, §3). A canonical code assigns the same codeword
// *lengths* as an ordinary Huffman code but chooses the codewords
// deterministically from the length histogram N[i], so that the decoder
// needs only the histogram and the value array D — "a codeword can be
// rapidly decoded using the arrays N[i] and D[j]".
package huffman

import "encoding/binary"

// BitWriter accumulates a most-significant-bit-first bit stream.
//
// Ownership: Bytes hands the caller a slice aliasing the internal buffer.
// From that point the writer no longer owns the storage; Reset detaches from
// it (the next write grows a fresh buffer), so a recycled writer can never
// mutate bytes a previous user still holds. The pooled Get/Put cycle in
// pool.go relies on exactly this contract.
type BitWriter struct {
	buf  []byte
	bits uint8 // valid bits in cur
	cur  byte
	n    int // total bits written
	// leaked records that Bytes exposed buf to a caller; Reset must then
	// abandon the storage instead of truncating it for reuse.
	leaked bool
}

// Reset clears the writer for reuse. Capacity is retained unless Bytes has
// handed the buffer out, in which case the storage is abandoned so the
// previously returned slice stays immutable forever.
func (w *BitWriter) Reset() {
	if w.leaked {
		w.buf = nil
		w.leaked = false
	} else {
		w.buf = w.buf[:0]
	}
	w.cur, w.bits, w.n = 0, 0, 0
}

// Grow ensures capacity for at least n more whole bytes of output, so a
// writer sized from region statistics completes its stream without
// intermediate reallocation.
func (w *BitWriter) Grow(n int) {
	if n <= 0 || cap(w.buf)-len(w.buf) >= n {
		return
	}
	buf := make([]byte, len(w.buf), len(w.buf)+n)
	copy(buf, w.buf)
	w.buf = buf
	w.leaked = false
}

// WriteBits appends the low width bits of v, most significant first.
func (w *BitWriter) WriteBits(v uint64, width uint) {
	for i := int(width) - 1; i >= 0; i-- {
		w.WriteBit(uint8(v >> uint(i) & 1))
	}
}

// WriteBit appends a single bit.
func (w *BitWriter) WriteBit(b uint8) {
	w.cur = w.cur<<1 | b&1
	w.bits++
	w.n++
	if w.bits == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.bits = 0, 0
	}
}

// Len reports the number of bits written so far.
func (w *BitWriter) Len() int { return w.n }

// Append replays every bit written to src onto w, producing exactly the
// stream the same WriteBit calls would have. It lets independent sections
// be encoded concurrently into private writers and then concatenated into
// one bit stream; when w is byte-aligned the bulk of src is copied whole.
func (w *BitWriter) Append(src *BitWriter) {
	if w.bits == 0 {
		w.buf = append(w.buf, src.buf...)
		w.n += 8 * len(src.buf)
	} else {
		for _, b := range src.buf {
			w.WriteBits(uint64(b), 8)
		}
	}
	if src.bits > 0 {
		w.WriteBits(uint64(src.cur), uint(src.bits))
	}
}

// Bytes flushes the final partial byte (padding with zero bits) and returns
// the accumulated buffer. The writer remains usable; further writes continue
// from the unpadded position only if the bit count was already a multiple of
// eight, so callers should treat Bytes as terminal.
func (w *BitWriter) Bytes() []byte {
	w.leaked = true
	out := w.buf
	if w.bits > 0 {
		out = append(out, w.cur<<(8-w.bits))
	}
	return out
}

// BitReader consumes a most-significant-bit-first bit stream and counts the
// bits it reads, which the simulator's cost model uses to charge
// decompression work.
//
// The reader keeps the upcoming bits in a 64-bit refill buffer and extracts
// whole fields with shifts instead of per-bit loops; the observable stream —
// bit values, consumed-bit count, zero fill past the end — is identical to a
// bit-at-a-time reader over the same buffer (see the equivalence tests in
// bitio_equiv_test.go).
type BitReader struct {
	buf    []byte
	pos    int    // absolute bit position consumed so far
	bitbuf uint64 // upcoming bits, left-aligned: bit 63 is the next bit
	nbits  uint   // valid bits in bitbuf
	bp     int    // byte index of the next unloaded byte
}

// NewBitReader returns a reader over buf.
func NewBitReader(buf []byte) *BitReader { return &BitReader{buf: buf} }

// Reset repositions the reader at bit 0 of a new buffer, exactly as
// NewBitReader would, so pooled readers replay the fresh-reader bit stream.
func (r *BitReader) Reset(buf []byte) {
	r.buf = buf
	r.pos, r.bitbuf, r.nbits, r.bp = 0, 0, 0, 0
}

// refill tops the bit buffer up to at least 57 valid bits. Past the end of
// buf the stream continues with zero bits, matching the zero padding emitted
// by BitWriter.Bytes; decoders terminate on an explicit sentinel value
// rather than on end of stream.
func (r *BitReader) refill() {
	if r.bp+8 <= len(r.buf) {
		// One 64-bit load continues the stream at bit 63-nbits. Only the
		// whole bytes that fit are accounted in nbits and bp; up to seven
		// unaccounted low bits also land in bitbuf, but they hold exactly
		// the stream bits at those positions, so the next refill ORs the
		// same values over them.
		n := (64 - r.nbits) >> 3
		r.bitbuf |= binary.BigEndian.Uint64(r.buf[r.bp:]) >> r.nbits
		r.nbits += n << 3
		r.bp += int(n)
		return
	}
	for r.nbits <= 56 {
		if r.bp >= len(r.buf) {
			r.nbits = 64 // implicit zero bits; bitbuf's low bits are zero
			return
		}
		r.bitbuf |= uint64(r.buf[r.bp]) << (56 - r.nbits)
		r.nbits += 8
		r.bp++
	}
}

// peek returns the next width bits (width ≤ 57) without consuming them.
func (r *BitReader) peek(width uint) uint64 {
	if r.nbits < width {
		r.refill()
	}
	return r.bitbuf >> (64 - width)
}

// skip consumes width bits; the caller must have peeked at least that many.
func (r *BitReader) skip(width uint) {
	r.bitbuf <<= width
	r.nbits -= width
	r.pos += int(width)
}

// ReadBit returns the next bit. Reading past the end returns zero bits.
func (r *BitReader) ReadBit() uint8 {
	if r.nbits == 0 {
		r.refill()
	}
	b := uint8(r.bitbuf >> 63)
	r.bitbuf <<= 1
	r.nbits--
	r.pos++
	return b
}

// ReadBits reads width bits, most significant first. Widths above 64 keep
// only the last 64 bits read (the earlier ones shift out), like the
// bit-at-a-time formulation.
func (r *BitReader) ReadBits(width uint) uint64 {
	for width > 64 {
		r.ReadBit()
		width--
	}
	if width > 32 {
		hi := r.readSmall(width - 32)
		return hi<<32 | r.readSmall(32)
	}
	return r.readSmall(width)
}

// readSmall extracts up to 32 bits from the refill buffer in one shift.
func (r *BitReader) readSmall(width uint) uint64 {
	if width == 0 {
		return 0
	}
	if r.nbits < width {
		r.refill()
	}
	v := r.bitbuf >> (64 - width)
	r.bitbuf <<= width
	r.nbits -= width
	r.pos += int(width)
	return v
}

// BitsRead reports the number of bits consumed so far.
func (r *BitReader) BitsRead() int { return r.pos }

// Seek positions the reader at an absolute bit offset.
func (r *BitReader) Seek(bitPos int) {
	r.pos = bitPos
	r.bp = bitPos >> 3
	r.bitbuf = 0
	r.nbits = 0
	if k := uint(bitPos & 7); k != 0 {
		var b byte
		if r.bp >= 0 && r.bp < len(r.buf) {
			b = r.buf[r.bp]
		}
		r.bp++
		// Drop the k already-consumed top bits of the straddled byte.
		r.bitbuf = uint64(b) << (56 + k)
		r.nbits = 8 - k
	}
}
