package huffman

import (
	"bytes"
	"testing"
)

// writeMix drives a writer through a deterministic mixed-width bit pattern.
func writeMix(w *BitWriter, seed uint64, nOps int) {
	state := seed
	for i := 0; i < nOps; i++ {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		w.WriteBits(state, uint(1+state%23))
	}
}

// TestBitWriterBytesOwnershipUnderReset is the ownership contract: a slice
// returned by Bytes is never mutated by later use of the recycled writer,
// whether recycled by hand (Reset) or through the pool.
func TestBitWriterBytesOwnershipUnderReset(t *testing.T) {
	var w BitWriter
	writeMix(&w, 0x1234, 100)
	got := w.Bytes()
	want := append([]byte(nil), got...)

	// Recycle and write a completely different, longer stream.
	w.Reset()
	if w.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", w.Len())
	}
	writeMix(&w, 0xFEFE, 400)
	_ = w.Bytes()

	if !bytes.Equal(got, want) {
		t.Fatal("slice returned by Bytes was mutated by writes after Reset")
	}

	// Same through the pool: Put must detach the leaked buffer too.
	w2 := GetWriter(0)
	writeMix(w2, 0x7777, 50)
	got2 := w2.Bytes()
	want2 := append([]byte(nil), got2...)
	PutWriter(w2)
	for i := 0; i < 8; i++ {
		w3 := GetWriter(64)
		writeMix(w3, uint64(0x9000+i), 200)
		_ = w3.Bytes()
		PutWriter(w3)
	}
	if !bytes.Equal(got2, want2) {
		t.Fatal("slice returned by Bytes was mutated by pooled writer reuse")
	}
}

// TestBitWriterResetReusesCapacity: without a Bytes leak, Reset keeps the
// grown buffer, which is what makes the pooled encode path allocation-free.
func TestBitWriterResetReusesCapacity(t *testing.T) {
	var w BitWriter
	writeMix(&w, 1, 1000)
	c := cap(w.buf)
	if c == 0 {
		t.Fatal("writer never grew")
	}
	w.Reset()
	if cap(w.buf) != c {
		t.Fatalf("Reset dropped capacity %d -> %d without a Bytes leak", c, cap(w.buf))
	}
	w.Reset()
	writeMix(&w, 1, 1000)
	if cap(w.buf) != c {
		t.Fatalf("rewrite grew capacity %d -> %d", c, cap(w.buf))
	}
}

// TestPooledWriterStreamIdentical: a writer cycled through Get/Put produces
// byte-for-byte the stream a fresh writer produces, including Append merges.
func TestPooledWriterStreamIdentical(t *testing.T) {
	fresh := func(seed uint64) []byte {
		var a, b BitWriter
		writeMix(&a, seed, 137)
		writeMix(&b, seed^0xABCD, 61)
		a.Append(&b)
		return append([]byte(nil), a.Bytes()...)
	}
	pooled := func(seed uint64) []byte {
		a, b := GetWriter(8), GetWriter(8)
		writeMix(a, seed, 137)
		writeMix(b, seed^0xABCD, 61)
		a.Append(b)
		PutWriter(b)
		out := append([]byte(nil), a.Bytes()...)
		PutWriter(a)
		return out
	}
	for seed := uint64(1); seed < 20; seed++ {
		if got, want := pooled(seed), fresh(seed); !bytes.Equal(got, want) {
			t.Fatalf("seed %d: pooled stream differs from fresh (%d vs %d bytes)", seed, len(got), len(want))
		}
	}
}

// TestPooledReaderStreamIdentical: a pooled (Reset) reader consumes the same
// bit values and charges the same bit counts as a fresh reader, including
// reads past the end and Seek.
func TestPooledReaderStreamIdentical(t *testing.T) {
	var w BitWriter
	writeMix(&w, 42, 300)
	blob := w.Bytes()

	read := func(r *BitReader) []uint64 {
		var out []uint64
		r.Seek(13)
		for i := uint(1); i <= 40; i++ {
			out = append(out, r.ReadBits(i%24+1))
		}
		out = append(out, uint64(r.BitsRead()))
		return out
	}
	want := read(NewBitReader(blob))
	for i := 0; i < 5; i++ {
		r := GetReader(blob)
		got := read(r)
		PutReader(r)
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("cycle %d read %d: pooled %d, fresh %d", i, k, got[k], want[k])
			}
		}
	}

	// Pooling disabled must behave identically as well.
	SetPooling(false)
	defer SetPooling(true)
	r := GetReader(blob)
	got := read(r)
	PutReader(r)
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("pools-off read %d: got %d, want %d", k, got[k], want[k])
		}
	}
}
