package huffman

// Pooled bit I/O. The warm squash path creates one BitWriter per region
// encode and one BitReader per region decode; recycling them through
// sync.Pool makes both O(1) allocations steady-state — a recycled writer
// arrives with its grown buffer, a recycled reader with no buffer at all.
//
// Correctness leans on two contracts:
//
//   - BitWriter.Reset abandons any buffer Bytes has handed out (ownership,
//     see bitio.go), so recycling can never mutate a caller's bytes;
//   - BitReader.Reset replays NewBitReader bit for bit, so pooled and fresh
//     readers consume identical streams and charge identical bit counts.
//
// SetPooling(false) routes every Get through a fresh allocation and turns
// Put into a no-op; the byte-identity guards squash images with pools on
// and off against each other.

import (
	"sync"
	"sync/atomic"
)

// poolingOff disables the pools when set (see SetPooling). Atomic so a
// toggling test never races a server goroutine mid-request; the value only
// picks the allocation strategy, never the emitted bits.
var poolingOff atomic.Bool

// SetPooling enables (the default) or disables the package's writer and
// reader pools. Off, Get* allocate fresh and Put* drop their argument; the
// bit streams produced are identical either way.
func SetPooling(on bool) { poolingOff.Store(!on) }

// PoolingEnabled reports whether the pools are active.
func PoolingEnabled() bool { return !poolingOff.Load() }

// maxPooledBytes bounds the writer capacity the pool retains; anything
// larger (a pathological region) is dropped for the GC rather than pinned.
const maxPooledBytes = 1 << 20

var writerPool = sync.Pool{New: func() any { return new(BitWriter) }}
var readerPool = sync.Pool{New: func() any { return new(BitReader) }}

// GetWriter returns a reset writer with capacity for at least sizeHint
// bytes, recycled from the pool when pooling is on.
func GetWriter(sizeHint int) *BitWriter {
	var w *BitWriter
	if poolingOff.Load() {
		w = new(BitWriter)
	} else {
		w = writerPool.Get().(*BitWriter)
		w.Reset()
	}
	w.Grow(sizeHint)
	return w
}

// PutWriter recycles w. The writer must no longer be referenced by the
// caller; any slice obtained from Bytes stays valid (Reset detaches it).
func PutWriter(w *BitWriter) {
	if w == nil || poolingOff.Load() {
		return
	}
	w.Reset()
	if cap(w.buf) > maxPooledBytes {
		return
	}
	writerPool.Put(w)
}

// GetReader returns a reader positioned at bit 0 of buf, recycled from the
// pool when pooling is on. It is interchangeable with NewBitReader.
func GetReader(buf []byte) *BitReader {
	if poolingOff.Load() {
		return NewBitReader(buf)
	}
	r := readerPool.Get().(*BitReader)
	r.Reset(buf)
	return r
}

// PutReader recycles r, dropping its reference to the caller's buffer.
func PutReader(r *BitReader) {
	if r == nil || poolingOff.Load() {
		return
	}
	r.Reset(nil)
	readerPool.Put(r)
}
