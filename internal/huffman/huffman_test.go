package huffman

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBitIORoundTrip(t *testing.T) {
	var w BitWriter
	w.WriteBits(0b101, 3)
	w.WriteBits(0, 1)
	w.WriteBits(0xDEADBEEF, 32)
	w.WriteBits(1, 7)
	if w.Len() != 43 {
		t.Fatalf("Len = %d, want 43", w.Len())
	}
	r := NewBitReader(w.Bytes())
	if got := r.ReadBits(3); got != 0b101 {
		t.Errorf("first field = %b", got)
	}
	if got := r.ReadBits(1); got != 0 {
		t.Errorf("second field = %b", got)
	}
	if got := r.ReadBits(32); got != 0xDEADBEEF {
		t.Errorf("third field = %x", got)
	}
	if got := r.ReadBits(7); got != 1 {
		t.Errorf("fourth field = %b", got)
	}
	if r.BitsRead() != 43 {
		t.Errorf("BitsRead = %d, want 43", r.BitsRead())
	}
	// Reading past end yields zeros.
	if got := r.ReadBits(16); got != 0 {
		t.Errorf("past-end read = %x, want 0", got)
	}
}

func TestBitIOProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		type field struct {
			v uint64
			w uint
		}
		fields := make([]field, n)
		var bw BitWriter
		for i := range fields {
			width := uint(1 + rng.Intn(58))
			v := rng.Uint64() & (1<<width - 1)
			fields[i] = field{v, width}
			bw.WriteBits(v, width)
		}
		br := NewBitReader(bw.Bytes())
		for _, f := range fields {
			if got := br.ReadBits(f.w); got != f.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPaperExample verifies the worked example from §3 of the paper:
// N[2]=3, N[3]=1, N[5]=4 gives b_1=0, b_2=0, b_3=6, b_4=14, b_5=28 and
// codewords 00, 01, 10, 110, 11100, 11101, 11110, 11111.
func TestPaperExample(t *testing.T) {
	c := &Code{
		N: []int{0, 0, 3, 1, 0, 4},
		D: []uint32{10, 20, 30, 40, 50, 60, 70, 80},
	}
	wantCodes := []struct {
		bits uint64
		len  uint8
	}{
		{0b00, 2}, {0b01, 2}, {0b10, 2},
		{0b110, 3},
		{0b11100, 5}, {0b11101, 5}, {0b11110, 5}, {0b11111, 5},
	}
	c.buildEncoder()
	for i, v := range c.D {
		cw := c.enc[v]
		if cw.bits != wantCodes[i].bits || cw.len != wantCodes[i].len {
			t.Errorf("value %d: codeword %0*b (len %d), want %0*b (len %d)",
				v, cw.len, cw.bits, cw.len, wantCodes[i].len, wantCodes[i].bits, wantCodes[i].len)
		}
	}
	// Decode every codeword back.
	var w BitWriter
	for _, v := range c.D {
		if err := c.Encode(&w, v); err != nil {
			t.Fatal(err)
		}
	}
	r := NewBitReader(w.Bytes())
	for _, want := range c.D {
		got, err := c.Decode(r)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("decoded %d, want %d", got, want)
		}
	}
}

func TestBuildSingleValue(t *testing.T) {
	c := Build(map[uint32]uint64{42: 7})
	if c.NumValues() != 1 || c.MaxLen() != 1 {
		t.Fatalf("single-value code: NumValues=%d MaxLen=%d", c.NumValues(), c.MaxLen())
	}
	var w BitWriter
	if err := c.Encode(&w, 42); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 1 {
		t.Fatalf("single-value codeword length = %d, want 1", w.Len())
	}
	r := NewBitReader(w.Bytes())
	v, err := c.Decode(r)
	if err != nil || v != 42 {
		t.Fatalf("decode = %d, %v", v, err)
	}
}

func TestBuildEmpty(t *testing.T) {
	c := Build(nil)
	if c.NumValues() != 0 {
		t.Fatal("empty build should have no values")
	}
	var w BitWriter
	if err := c.Encode(&w, 1); err == nil {
		t.Fatal("encoding with empty code should fail")
	}
	if _, err := c.Decode(NewBitReader([]byte{0xFF})); err == nil {
		t.Fatal("decoding with empty code should fail")
	}
}

func TestEncodeUnknownValue(t *testing.T) {
	c := Build(map[uint32]uint64{1: 5, 2: 3})
	var w BitWriter
	if err := c.Encode(&w, 99); err == nil {
		t.Fatal("expected error for value outside code")
	}
}

func TestDecodeInvalidCodeword(t *testing.T) {
	// Code with codewords 0 and 10: the stream 11... is invalid.
	c := Build(map[uint32]uint64{1: 10, 2: 1, 3: 1})
	// Lengths: 1 gets len 1; 2 and 3 get len 2 → codewords 0, 10, 11: all
	// two-bit patterns valid. Construct a truly incomplete code by hand.
	c = &Code{N: []int{0, 1, 1}, D: []uint32{7, 9}} // codewords: 0, 10; "11" invalid
	r := NewBitReader([]byte{0b11000000})
	if _, err := c.Decode(r); err == nil {
		t.Fatal("expected ErrBadCode for invalid codeword")
	}
}

// TestOptimality checks the Huffman optimality property on small inputs by
// comparing against brute force: total coded length must be minimal over all
// prefix codes, which for Huffman we validate via the Kraft equality and a
// sibling-property spot check (equal to entropy bound within 1 bit/symbol).
func TestCodeLengthsSatisfyKraftEquality(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		freq := map[uint32]uint64{}
		n := 2 + rng.Intn(40)
		for i := 0; i < n; i++ {
			freq[uint32(rng.Intn(1000))] = uint64(1 + rng.Intn(10000))
		}
		c := Build(freq)
		// Kraft sum for a complete binary code equals exactly 1.
		var kraft float64
		for i := 1; i <= c.MaxLen(); i++ {
			kraft += float64(c.N[i]) / float64(uint64(1)<<uint(i))
		}
		if kraft < 0.999999 || kraft > 1.000001 {
			t.Fatalf("Kraft sum = %v, want 1 (N=%v)", kraft, c.N)
		}
	}
}

func TestShorterCodewordsForMoreFrequentValues(t *testing.T) {
	freq := map[uint32]uint64{1: 1000, 2: 100, 3: 10, 4: 1}
	c := Build(freq)
	if c.CodeLen(1) > c.CodeLen(2) || c.CodeLen(2) > c.CodeLen(3) || c.CodeLen(3) > c.CodeLen(4) {
		t.Fatalf("codeword lengths not monotone in frequency: %d %d %d %d",
			c.CodeLen(1), c.CodeLen(2), c.CodeLen(3), c.CodeLen(4))
	}
}

func TestEncodeDecodeRandomStreams(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Skewed distribution similar to operand fields.
		nvals := 1 + rng.Intn(60)
		vals := make([]uint32, nvals)
		freq := map[uint32]uint64{}
		for i := range vals {
			vals[i] = uint32(rng.Intn(1 << 16))
		}
		var data []uint32
		for i := 0; i < 500; i++ {
			v := vals[int(float64(nvals)*rng.Float64()*rng.Float64())] // skew to low indices
			data = append(data, v)
			freq[v]++
		}
		c := Build(freq)
		var w BitWriter
		for _, v := range data {
			if err := c.Encode(&w, v); err != nil {
				return false
			}
		}
		r := NewBitReader(w.Bytes())
		for _, want := range data {
			got, err := c.Decode(r)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		freq := map[uint32]uint64{}
		for i := 0; i < 1+rng.Intn(80); i++ {
			freq[uint32(rng.Intn(1<<21))] = uint64(1 + rng.Intn(5000))
		}
		c := Build(freq)
		blob, err := c.MarshalBinary()
		if err != nil {
			return false
		}
		var back Code
		if err := back.UnmarshalBinary(blob); err != nil {
			return false
		}
		return reflect.DeepEqual(c.N, back.N) && reflect.DeepEqual(c.D, back.D)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	var c Code
	cases := [][]byte{
		{},
		{0xFF},        // truncated uvarint
		{60},          // maxLen > MaxCodeLen
		{2, 1},        // missing N[2]
		{1, 2, 0},     // N sums to 2 but only one D value
		{1, 1, 5, 99}, // trailing bytes
	}
	for i, b := range cases {
		if err := c.UnmarshalBinary(b); err == nil {
			t.Errorf("case %d: UnmarshalBinary(%v) succeeded, want error", i, b)
		}
	}
}

func TestTableSizeNonzero(t *testing.T) {
	c := Build(map[uint32]uint64{1: 3, 2: 2, 3: 1})
	if c.TableSize() <= 0 {
		t.Fatal("TableSize should be positive for a nonempty code")
	}
}

func TestDecodeCountsBits(t *testing.T) {
	c := Build(map[uint32]uint64{1: 8, 2: 4, 3: 2, 4: 1, 5: 1})
	var w BitWriter
	seq := []uint32{1, 1, 5, 2, 3}
	var wantBits int
	for _, v := range seq {
		_ = c.Encode(&w, v)
		wantBits += c.CodeLen(v)
	}
	r := NewBitReader(w.Bytes())
	for range seq {
		if _, err := c.Decode(r); err != nil {
			t.Fatal(err)
		}
	}
	if r.BitsRead() != wantBits {
		t.Fatalf("BitsRead = %d, want %d", r.BitsRead(), wantBits)
	}
}
