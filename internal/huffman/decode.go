package huffman

// Table-driven decoding. The paper's DECODE() loop (see DecodeTree) walks
// the length histogram one bit at a time; Decode instead peeks upcoming
// bits from the reader's refill buffer and resolves codewords of length
// ≤ DecodeTableBits with a single table lookup. Longer codewords are
// resolved from one wide peek against precomputed per-length limit values —
// the same canonical arithmetic, without the per-bit loop. Canonical
// codewords are prefix-free, so table entries of distinct codewords never
// overlap, and every path consumes exactly the bits of the decoded
// codeword: the simulated bit-read count (and with it the cycle model) is
// identical to the reference decoder's.

// DecodeTableBits is the first-K-bits lookup width. Real operand streams
// decode almost entirely below this length; longer codewords take the
// wide-peek path.
const DecodeTableBits = 11

// decEntry resolves one K-bit prefix: the decoded value and its codeword
// length. len == 0 marks a prefix that no codeword of length ≤ K matches
// (either a longer codeword or, for corrupt tables, no codeword at all).
type decEntry struct {
	sym uint32
	len uint8
}

type decTable struct {
	// entries is indexed by the next DecodeTableBits bits of the stream.
	// A fixed-size array keeps the hot lookup free of bounds checks.
	entries *[1 << DecodeTableBits]decEntry
	maxLen  uint
	// Per-length canonical decode state, indexed by codeword length i:
	// base[i] is the first codeword value b_i, jbase[i] is the index in D
	// of the first length-i value, and wlim[i] is (b_i + N[i]), the first
	// invalid length-i prefix, left-aligned to maxLen bits so a maxLen-bit
	// peek w encodes a valid length-i codeword iff w < wlim[i].
	base, wlim []uint64
	jbase      []int
}

// regular reports whether (N, D) describe a well-formed canonical code:
// codeword counts never exceed the available prefixes at any length (the
// Kraft condition, which also makes the canonical codewords prefix-free)
// and the counts sum to exactly len(D). Build always produces regular
// codes; deserialized tables may not be, and irregular ones decode through
// the reference path only, so corrupt inputs fail identically on both
// paths.
func (c *Code) regular() bool {
	var b uint64
	total := 0
	for i := 1; i <= c.MaxLen(); i++ {
		if i > 1 {
			b = 2 * (b + uint64(c.N[i-1]))
		}
		if i > 63 || b+uint64(c.N[i]) > 1<<uint(i) {
			return false
		}
		total += c.N[i]
	}
	return total == len(c.D)
}

// buildDecoder materializes the decode acceleration structures from N and D
// by enumerating the canonical codewords b_i, b_i+1, … of each length. For
// irregular tables it builds an empty decoder (maxLen 0, no entries), which
// routes every Decode through DecodeTree.
func (c *Code) buildDecoder() {
	t := &decTable{entries: new([1 << DecodeTableBits]decEntry)}
	if !c.regular() {
		c.dec = t
		return
	}
	maxLen := c.MaxLen()
	t.maxLen = uint(maxLen)
	t.base = make([]uint64, maxLen+1)
	t.wlim = make([]uint64, maxLen+1)
	t.jbase = make([]int, maxLen+1)
	var b uint64
	j := 0
	for i := 1; i <= maxLen; i++ {
		if i > 1 {
			b = 2 * (b + uint64(c.N[i-1]))
		}
		t.base[i] = b
		if i <= 57 {
			t.wlim[i] = (b + uint64(c.N[i])) << uint(57-i)
		}
		t.jbase[i] = j
		for n := 0; n < c.N[i]; n++ {
			if i <= DecodeTableBits {
				lo := (b + uint64(n)) << uint(DecodeTableBits-i)
				hi := lo + 1<<uint(DecodeTableBits-i)
				for e := lo; e < hi; e++ {
					t.entries[e] = decEntry{sym: c.D[j], len: uint8(i)}
				}
			}
			j++
		}
	}
	c.dec = t
}

// Decode reads one codeword from r and returns its value. Codewords of
// length ≤ DecodeTableBits resolve with one table lookup; longer ones with
// one wide peek and a short length scan. Anything irregular (codewords
// wider than the peek window, corrupt tables) falls back to DecodeTree,
// which — nothing having been consumed yet — replays the reference
// behaviour exactly, error cases included.
func (c *Code) Decode(r *BitReader) (uint32, error) {
	if c.dec == nil {
		if len(c.D) == 0 {
			return 0, ErrBadCode
		}
		c.buildDecoder()
	}
	t := c.dec
	if r.nbits < DecodeTableBits {
		r.refill()
	}
	e := t.entries[r.bitbuf>>(64-DecodeTableBits)]
	if e.len != 0 {
		r.bitbuf <<= e.len
		r.nbits -= uint(e.len)
		r.pos += int(e.len)
		c.Stats.TableHits++
		return e.sym, nil
	}
	if t.maxLen > 57 || len(c.D) == 0 {
		// MaxCodeLen allows lengths one beyond the peek window; such codes
		// cannot arise from realistic streams, so take the reference path.
		return c.DecodeTree(r)
	}
	// Peek a fixed 57 bits and scan lengths against the left-aligned
	// limits; the first length whose limit exceeds the window holds the
	// codeword.
	w := r.peek(57)
	for i := uint(DecodeTableBits + 1); i <= t.maxLen; i++ {
		if w < t.wlim[i] {
			v := w >> (57 - i)
			if v < t.base[i] {
				break // corrupt tables; defer to the reference decoder
			}
			idx := t.jbase[i] + int(v-t.base[i])
			if idx >= len(c.D) {
				break
			}
			r.skip(i)
			c.Stats.WidePeeks++
			return c.D[idx], nil
		}
	}
	return c.DecodeTree(r)
}
