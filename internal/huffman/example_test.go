package huffman_test

import (
	"fmt"

	"repro/internal/huffman"
)

// The worked example from §3 of the paper: with N[2]=3, N[3]=1, N[5]=4 the
// canonical codewords are 00, 01, 10, 110, 11100, 11101, 11110, 11111 —
// fully determined by the length histogram.
func ExampleCode_Decode() {
	code := &huffman.Code{
		N: []int{0, 0, 3, 1, 0, 4},
		D: []uint32{10, 20, 30, 40, 50, 60, 70, 80},
	}
	var w huffman.BitWriter
	for _, v := range []uint32{40, 10, 80} {
		if err := code.Encode(&w, v); err != nil {
			panic(err)
		}
	}
	r := huffman.NewBitReader(w.Bytes())
	for i := 0; i < 3; i++ {
		v, err := code.Decode(r)
		if err != nil {
			panic(err)
		}
		fmt.Println(v)
	}
	// Output:
	// 40
	// 10
	// 80
}

// Build constructs an optimal canonical code from frequencies; more
// frequent values receive shorter codewords.
func ExampleBuild() {
	code := huffman.Build(map[uint32]uint64{
		7:  1000, // very common
		13: 10,
		99: 1,
	})
	fmt.Println(code.CodeLen(7) <= code.CodeLen(13))
	fmt.Println(code.CodeLen(13) <= code.CodeLen(99))
	// Output:
	// true
	// true
}
