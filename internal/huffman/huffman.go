package huffman

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
)

// MaxCodeLen bounds codeword lengths. Huffman codes over realistic operand
// streams stay far below this; the bound exists so the decoder's length loop
// is provably finite on corrupted input.
const MaxCodeLen = 58

// Code is a canonical Huffman code for a set of uint32 values. It carries
// exactly the two arrays the paper's decoder needs: the length histogram N
// and the value array D ordered by codeword.
type Code struct {
	// N[i] is the number of codewords of length i; N[0] is unused and zero.
	N []int
	// D holds the coded values ordered by codeword value (ties cannot occur;
	// within one length, values are assigned codewords in ascending value
	// order, making the code deterministic).
	D []uint32

	// enc maps a value to its codeword; derived from N and D on demand.
	enc map[uint32]codeword
	// dec is the first-K-bits decode table (decode.go), derived on demand.
	dec *decTable

	// Stats counts which decode path resolved each codeword. Plain
	// fields, not atomics: a Code is not safe for concurrent decoding
	// anyway (Decode lazily builds dec), so the counters add no new
	// constraint. Telemetry only — decoding is bit-identical regardless.
	Stats DecodeStats
}

// DecodeStats tallies decode-path usage for one code (see Code.Stats).
type DecodeStats struct {
	// TableHits resolved from the first-DecodeTableBits lookup table.
	TableHits uint64 `json:"table_hits"`
	// WidePeeks resolved from the 57-bit peek + length scan.
	WidePeeks uint64 `json:"wide_peeks"`
	// TreeDecodes went through the reference DECODE() loop (slow-decode
	// mode, irregular tables, or codewords beyond the peek window).
	TreeDecodes uint64 `json:"tree_decodes"`
}

// AddTo accumulates s into total; used to aggregate across streams.
func (s DecodeStats) AddTo(total *DecodeStats) {
	total.TableHits += s.TableHits
	total.WidePeeks += s.WidePeeks
	total.TreeDecodes += s.TreeDecodes
}

type codeword struct {
	bits uint64
	len  uint8
}

// node is a Huffman tree node used only during construction.
type node struct {
	freq        uint64
	value       uint32
	left, right *node
}

type nodeHeap []*node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	// Tie-break on value for deterministic trees. Internal nodes carry the
	// minimum value of their subtree.
	return h[i].value < h[j].value
}
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)   { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() any     { old := *h; n := old[len(old)-1]; *h = old[:len(old)-1]; return n }

// Build constructs a canonical Huffman code from a value-frequency map.
// Values with zero frequency are ignored. An empty map yields an empty code
// whose encoder rejects every value. A single-value map yields a one-bit
// code, as in the paper's formulation (there is no zero-length codeword).
func Build(freq map[uint32]uint64) *Code {
	if len(freq) == 0 {
		return &Code{N: []int{0}}
	}
	values := make([]uint32, 0, len(freq))
	for v, f := range freq {
		if f > 0 {
			values = append(values, v)
		}
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	if len(values) == 0 {
		return &Code{N: []int{0}}
	}
	if len(values) == 1 {
		return &Code{N: []int{0, 1}, D: values}
	}

	h := make(nodeHeap, 0, len(values))
	for _, v := range values {
		h = append(h, &node{freq: freq[v], value: v})
	}
	heap.Init(&h)
	for h.Len() > 1 {
		a := heap.Pop(&h).(*node)
		b := heap.Pop(&h).(*node)
		m := a.value
		if b.value < m {
			m = b.value
		}
		heap.Push(&h, &node{freq: a.freq + b.freq, value: m, left: a, right: b})
	}
	root := h[0]

	// Collect depth of every leaf; the canonical code keeps only lengths.
	type leafDepth struct {
		value uint32
		depth int
	}
	var leaves []leafDepth
	var walk func(n *node, d int)
	walk = func(n *node, d int) {
		if n.left == nil {
			if d == 0 {
				d = 1 // single-leaf tree cannot occur here, but be safe
			}
			leaves = append(leaves, leafDepth{n.value, d})
			return
		}
		walk(n.left, d+1)
		walk(n.right, d+1)
	}
	walk(root, 0)

	maxLen := 0
	for _, l := range leaves {
		if l.depth > maxLen {
			maxLen = l.depth
		}
	}
	if maxLen > MaxCodeLen {
		// Unreachable for the stream sizes this system compresses (depth k
		// requires total frequency ≥ Fib(k)), but guard anyway.
		panic(fmt.Sprintf("huffman: codeword length %d exceeds MaxCodeLen", maxLen))
	}

	c := &Code{N: make([]int, maxLen+1)}
	for _, l := range leaves {
		c.N[l.depth]++
	}
	// Canonical order: by length, then by value.
	sort.Slice(leaves, func(i, j int) bool {
		if leaves[i].depth != leaves[j].depth {
			return leaves[i].depth < leaves[j].depth
		}
		return leaves[i].value < leaves[j].value
	})
	c.D = make([]uint32, len(leaves))
	for i, l := range leaves {
		c.D[i] = l.value
	}
	return c
}

// NumValues reports how many distinct values the code encodes.
func (c *Code) NumValues() int { return len(c.D) }

// MaxLen reports the longest codeword length.
func (c *Code) MaxLen() int { return len(c.N) - 1 }

// buildEncoder materializes the value→codeword map from N and D, assigning
// the canonical codewords b_i, b_i+1, ... of each length i where b_1 = 0 and
// b_i = 2(b_{i-1} + N[i-1]).
func (c *Code) buildEncoder() {
	c.enc = make(map[uint32]codeword, len(c.D))
	var b uint64
	j := 0
	for i := 1; i <= c.MaxLen(); i++ {
		if i > 1 {
			b = 2 * (b + uint64(c.N[i-1]))
		}
		for k := 0; k < c.N[i]; k++ {
			c.enc[c.D[j]] = codeword{bits: b + uint64(k), len: uint8(i)}
			j++
		}
	}
}

// Prime materializes the encoder map and the decode table eagerly. Encode,
// CodeLen, and Decode build them lazily on first use, which is a data race
// if a shared Code is first used from concurrent encoders or decoders;
// callers that fan coding out across goroutines must Prime each code
// beforehand.
func (c *Code) Prime() {
	if c.enc == nil {
		c.buildEncoder()
	}
	if c.dec == nil {
		c.buildDecoder()
	}
}

// Encode appends the codeword for v to w. It returns an error if v is not in
// the code, which indicates the frequency pass and the encode pass saw
// different data.
func (c *Code) Encode(w *BitWriter, v uint32) error {
	if c.enc == nil {
		c.buildEncoder()
	}
	cw, ok := c.enc[v]
	if !ok {
		return fmt.Errorf("huffman: value %d not present in code", v)
	}
	w.WriteBits(cw.bits, uint(cw.len))
	return nil
}

// CodeLen reports the codeword length in bits for v, or 0 if absent.
func (c *Code) CodeLen(v uint32) int {
	if c.enc == nil {
		c.buildEncoder()
	}
	return int(c.enc[v].len)
}

// ErrBadCode reports a codeword that exceeds every valid length, meaning the
// bit stream and the code disagree.
var ErrBadCode = errors.New("huffman: invalid codeword in stream")

// DecodeTree reads one codeword from r and returns its value. This is a
// direct transcription of the paper's DECODE() procedure, consuming one bit
// per iteration:
//
//	v <- 0, b <- 0, j <- 0, i <- 0
//	do
//	    v <- 2v + NEXTBIT()
//	    b <- 2(b + N[i])
//	    j <- j + N[i]
//	    i <- i + 1
//	while v >= b + N[i]
//	return D[j + v - b]
//
// It is the reference decoder: Decode (decode.go) resolves short codewords
// by table lookup and delegates long ones here, and the fast-path-disabled
// runtime mode uses it exclusively.
func (c *Code) DecodeTree(r *BitReader) (uint32, error) {
	c.Stats.TreeDecodes++
	if len(c.D) == 0 {
		return 0, ErrBadCode
	}
	var v, b uint64
	j, i := 0, 0
	for {
		v = 2*v + uint64(r.ReadBit())
		b = 2 * (b + uint64(c.N[i]))
		j += c.N[i]
		i++
		// Loop exit (the paper's "while v >= b + N[i]" inverted): the i-bit
		// prefix v falls inside the length-i codeword block [b, b+N[i]).
		if v < b+uint64(c.N[i]) {
			idx := j + int(v-b)
			if v < b || idx >= len(c.D) {
				return 0, ErrBadCode
			}
			return c.D[idx], nil
		}
		if i >= len(c.N)-1 {
			return 0, ErrBadCode
		}
	}
}
