package huffman

import (
	"math/rand"
	"testing"
)

// refReader is the original bit-at-a-time BitReader, kept verbatim as the
// specification for the word-buffered implementation: the observable stream
// (bit values, consumed-bit count, zero fill past the end) must match it on
// every operation sequence.
type refReader struct {
	buf []byte
	pos int
}

func (r *refReader) ReadBit() uint8 {
	byteIdx := r.pos >> 3
	bitIdx := 7 - uint(r.pos&7)
	r.pos++
	if byteIdx >= len(r.buf) {
		return 0
	}
	return r.buf[byteIdx] >> bitIdx & 1
}

func (r *refReader) ReadBits(width uint) uint64 {
	var v uint64
	for i := uint(0); i < width; i++ {
		v = v<<1 | uint64(r.ReadBit())
	}
	return v
}

func (r *refReader) BitsRead() int { return r.pos }

func (r *refReader) Seek(bitPos int) { r.pos = bitPos }

func equivBuf(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	buf := make([]byte, n)
	rng.Read(buf)
	return buf
}

// TestReadBitsEquivalence drives every width 0..64 from every bit offset
// 0..len mod small primes, comparing value and position against the
// reference, including reads that straddle byte boundaries and reads that
// run past the end of the buffer into the implicit zero fill.
func TestReadBitsEquivalence(t *testing.T) {
	buf := equivBuf(67, 1) // odd length so wide widths hit the tail path
	for width := uint(0); width <= 64; width++ {
		for start := 0; start <= 8*len(buf)+70; start += 7 {
			fast := NewBitReader(buf)
			fast.Seek(start)
			ref := &refReader{buf: buf}
			ref.Seek(start)
			got, want := fast.ReadBits(width), ref.ReadBits(width)
			if got != want {
				t.Fatalf("ReadBits(%d) from bit %d = %#x, reference %#x", width, start, got, want)
			}
			if fast.BitsRead() != ref.BitsRead() {
				t.Fatalf("ReadBits(%d) from bit %d consumed %d bits, reference %d", width, start, fast.BitsRead(), ref.BitsRead())
			}
		}
	}
}

// TestReadBitsWideWidths checks the >64 behaviour: earlier bits shift out
// and only the last 64 survive, exactly as the bit-at-a-time formulation.
func TestReadBitsWideWidths(t *testing.T) {
	buf := equivBuf(32, 2)
	for _, width := range []uint{65, 72, 100, 128} {
		fast := NewBitReader(buf)
		ref := &refReader{buf: buf}
		if got, want := fast.ReadBits(width), ref.ReadBits(width); got != want {
			t.Fatalf("ReadBits(%d) = %#x, reference %#x", width, got, want)
		}
		if fast.BitsRead() != int(width) {
			t.Fatalf("ReadBits(%d) consumed %d bits", width, fast.BitsRead())
		}
	}
}

// TestReadMixedSequence interleaves ReadBit, ReadBits of random widths, and
// Seek, checking lockstep agreement with the reference over a long random
// operation tape (which exercises every refill alignment).
func TestReadMixedSequence(t *testing.T) {
	buf := equivBuf(257, 3)
	rng := rand.New(rand.NewSource(4))
	fast := NewBitReader(buf)
	ref := &refReader{buf: buf}
	for op := 0; op < 20000; op++ {
		switch rng.Intn(10) {
		case 0: // seek somewhere, sometimes unaligned, sometimes past the end
			p := rng.Intn(8*len(buf) + 100)
			fast.Seek(p)
			ref.Seek(p)
		case 1, 2, 3:
			if got, want := fast.ReadBit(), ref.ReadBit(); got != want {
				t.Fatalf("op %d: ReadBit at %d = %d, reference %d", op, ref.BitsRead()-1, got, want)
			}
		default:
			w := uint(rng.Intn(65))
			if got, want := fast.ReadBits(w), ref.ReadBits(w); got != want {
				t.Fatalf("op %d: ReadBits(%d) at %d = %#x, reference %#x", op, w, ref.BitsRead()-int(w), got, want)
			}
		}
		if fast.BitsRead() != ref.BitsRead() {
			t.Fatalf("op %d: position %d, reference %d", op, fast.BitsRead(), ref.BitsRead())
		}
	}
}

// TestPastEndZeroFill confirms that any read past the end yields zero bits
// forever and keeps counting positions.
func TestPastEndZeroFill(t *testing.T) {
	buf := []byte{0xFF, 0xFF}
	r := NewBitReader(buf)
	if got := r.ReadBits(16); got != 0xFFFF {
		t.Fatalf("in-bounds read = %#x", got)
	}
	for i := 0; i < 200; i++ {
		if b := r.ReadBit(); b != 0 {
			t.Fatalf("bit %d past end = %d, want 0", i, b)
		}
	}
	if got := r.ReadBits(64); got != 0 {
		t.Fatalf("wide read past end = %#x, want 0", got)
	}
	if r.BitsRead() != 16+200+64 {
		t.Fatalf("BitsRead = %d", r.BitsRead())
	}
}

// TestSeekStraddle seeks to every bit offset of a small buffer and reads a
// byte-straddling field, comparing against the reference.
func TestSeekStraddle(t *testing.T) {
	buf := equivBuf(16, 5)
	for p := 0; p < 8*len(buf); p++ {
		fast := NewBitReader(buf)
		fast.Seek(p)
		ref := &refReader{buf: buf, pos: p}
		if got, want := fast.ReadBits(13), ref.ReadBits(13); got != want {
			t.Fatalf("Seek(%d)+ReadBits(13) = %#x, reference %#x", p, got, want)
		}
	}
}
