#!/usr/bin/env bash
# fastpath_guard.sh — end-to-end proof that the fast-path engine changes
# nothing observable. For a set of mediabench programs it runs the full
# pipeline (emit → assemble → profile → squash), then executes each squashed
# image twice — default fast paths vs em-run -nofastpath — and requires:
#
#   1. identical squashed-image SHA-256 (squash itself never depends on the
#      fast paths; this also re-checks PR 1's determinism gate output),
#   2. byte-identical program output,
#   3. identical -stats lines: instructions, cycles, decompression counts,
#      and compressed bits read must match to the digit.
#
# Every program is checked in three squash variants, one per fast path the
# runtime ships: the default decompress-to-buffer image (split-stream coder),
# the §8 interpret-in-place image (-interpret, exercising the decoded-
# instruction memo), and the LZ dictionary-coder image (-coder lz,
# exercising the table-driven token decoder).
#
# Buffer pooling gets the same treatment: each bench is squashed once more
# with -nopool and the image must be byte-identical to the pooled default,
# and the image is executed with em-run -nopool (bypassing the runtime
# decompressor's pooled bit readers) with identical output and stats.
#
# Usage: scripts/fastpath_guard.sh [bench ...]   (default: adpcm g721_enc gsm)
set -euo pipefail
cd "$(dirname "$0")/.."

benches=("$@")
[ ${#benches[@]} -gt 0 ] || benches=(adpcm g721_enc gsm)

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

echo "building tools..."
go build -o "$work" ./cmd/mediabench ./cmd/em-as ./cmd/em-run ./cmd/squash

# check_variant <bench> <label> [extra squash flags...]
# Squashes twice (reproducibility), then runs the image with fast paths on
# and off and demands identical status, output, and simulated stats.
check_variant() {
  local b=$1 label=$2
  shift 2
  local img="$work/$b.$label.sqz.exe"

  "$work/squash" -profile "$work/$b.prof" "$@" -o "$img" "$work/$b.o" > /dev/null
  "$work/squash" -profile "$work/$b.prof" "$@" -o "$img.2" "$work/$b.o" > /dev/null
  local h1 h2
  h1=$(sha256sum "$img" | cut -d' ' -f1)
  h2=$(sha256sum "$img.2" | cut -d' ' -f1)
  if [ "$h1" != "$h2" ]; then
    echo "FAIL: $b [$label] squashed image not reproducible ($h1 vs $h2)" >&2
    exit 1
  fi
  echo "$b [$label] squashed image sha256 $h1"

  set +e
  "$work/em-run" -stats -in "$work/$b.time.in" "$img" \
    > "$work/$b.$label.fast.out" 2> "$work/$b.$label.fast.stats"
  local fast_status=$?
  "$work/em-run" -stats -nofastpath -in "$work/$b.time.in" "$img" \
    > "$work/$b.$label.slow.out" 2> "$work/$b.$label.slow.stats"
  local slow_status=$?
  set -e
  if [ "$fast_status" != "$slow_status" ]; then
    echo "FAIL: $b [$label] exit status $fast_status (fast) vs $slow_status (-nofastpath)" >&2
    exit 1
  fi
  cmp "$work/$b.$label.fast.out" "$work/$b.$label.slow.out" || {
    echo "FAIL: $b [$label] output differs with -nofastpath" >&2; exit 1; }
  diff "$work/$b.$label.fast.stats" "$work/$b.$label.slow.stats" || {
    echo "FAIL: $b [$label] simulated stats differ with -nofastpath" >&2; exit 1; }
  sed 's/^/  /' "$work/$b.$label.fast.stats"
}

# check_nopool <bench>
# Squashes with buffer pooling disabled and demands the image match the
# pooled default byte for byte, then executes it with em-run -nopool
# (bypassing the runtime decompressor's pooled bit readers) and compares
# output and stats against the pooled default's fast run.
check_nopool() {
  local b=$1
  local nop="$work/$b.nopool.sqz.exe"
  "$work/squash" -nopool -profile "$work/$b.prof" -o "$nop" "$work/$b.o" > /dev/null
  cmp "$work/$b.default.sqz.exe" "$nop" || {
    echo "FAIL: $b squashed image differs with -nopool" >&2; exit 1; }
  echo "$b [nopool] image identical to pooled default"

  "$work/em-run" -stats -nopool -in "$work/$b.time.in" "$nop" \
    > "$work/$b.nopool.out" 2> "$work/$b.nopool.stats" || true
  cmp "$work/$b.default.fast.out" "$work/$b.nopool.out" || {
    echo "FAIL: $b output differs with em-run -nopool" >&2; exit 1; }
  diff "$work/$b.default.fast.stats" "$work/$b.nopool.stats" || {
    echo "FAIL: $b simulated stats differ with em-run -nopool" >&2; exit 1; }
}

for b in "${benches[@]}"; do
  echo "== $b =="
  "$work/mediabench" -only "$b" -dir "$work"
  "$work/em-as" -o "$work/$b.o" "$work/$b.s"
  "$work/em-as" -link -o "$work/$b.exe" "$work/$b.s"
  "$work/em-run" -in "$work/$b.prof.in" -profile "$work/$b.prof" \
    "$work/$b.exe" > /dev/null

  check_variant "$b" default
  check_nopool "$b"
  check_variant "$b" interp -interpret -theta 0.001 -stub-capacity 64
  check_variant "$b" lz -coder lz
done

echo "fastpath guard passed: ${benches[*]}"
