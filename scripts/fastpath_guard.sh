#!/usr/bin/env bash
# fastpath_guard.sh — end-to-end proof that the fast-path engine changes
# nothing observable. For a set of mediabench programs it runs the full
# pipeline (emit → assemble → profile → squash), then executes each squashed
# image twice — default fast paths vs em-run -nofastpath — and requires:
#
#   1. identical squashed-image SHA-256 (squash itself never depends on the
#      fast paths; this also re-checks PR 1's determinism gate output),
#   2. byte-identical program output,
#   3. identical -stats lines: instructions, cycles, decompression counts,
#      and compressed bits read must match to the digit.
#
# Usage: scripts/fastpath_guard.sh [bench ...]   (default: adpcm g721_enc gsm)
set -euo pipefail
cd "$(dirname "$0")/.."

benches=("$@")
[ ${#benches[@]} -gt 0 ] || benches=(adpcm g721_enc gsm)

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

echo "building tools..."
go build -o "$work" ./cmd/mediabench ./cmd/em-as ./cmd/em-run ./cmd/squash

for b in "${benches[@]}"; do
  echo "== $b =="
  "$work/mediabench" -only "$b" -dir "$work"
  "$work/em-as" -o "$work/$b.o" "$work/$b.s"
  "$work/em-as" -link -o "$work/$b.exe" "$work/$b.s"
  "$work/em-run" -in "$work/$b.prof.in" -profile "$work/$b.prof" \
    "$work/$b.exe" > /dev/null

  # Squash twice to confirm the image is reproducible, then hash it.
  "$work/squash" -profile "$work/$b.prof" -o "$work/$b.sqz.exe" "$work/$b.o"
  "$work/squash" -profile "$work/$b.prof" -o "$work/$b.sqz2.exe" "$work/$b.o"
  h1=$(sha256sum "$work/$b.sqz.exe" | cut -d' ' -f1)
  h2=$(sha256sum "$work/$b.sqz2.exe" | cut -d' ' -f1)
  if [ "$h1" != "$h2" ]; then
    echo "FAIL: $b squashed image not reproducible ($h1 vs $h2)" >&2
    exit 1
  fi
  echo "$b squashed image sha256 $h1"

  # Run with fast paths (default) and with every fast path disabled; the
  # exit status, output bytes, and stats must be identical.
  set +e
  "$work/em-run" -stats -in "$work/$b.time.in" "$work/$b.sqz.exe" \
    > "$work/$b.fast.out" 2> "$work/$b.fast.stats"
  fast_status=$?
  "$work/em-run" -stats -nofastpath -in "$work/$b.time.in" "$work/$b.sqz.exe" \
    > "$work/$b.slow.out" 2> "$work/$b.slow.stats"
  slow_status=$?
  set -e
  if [ "$fast_status" != "$slow_status" ]; then
    echo "FAIL: $b exit status $fast_status (fast) vs $slow_status (-nofastpath)" >&2
    exit 1
  fi
  cmp "$work/$b.fast.out" "$work/$b.slow.out" || {
    echo "FAIL: $b output differs with -nofastpath" >&2; exit 1; }
  diff "$work/$b.fast.stats" "$work/$b.slow.stats" || {
    echo "FAIL: $b simulated stats differ with -nofastpath" >&2; exit 1; }
  sed 's/^/  /' "$work/$b.fast.stats"
done

echo "fastpath guard passed: ${benches[*]}"
