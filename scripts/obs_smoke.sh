#!/usr/bin/env bash
# obs_smoke.sh — end-to-end check of the telemetry layer. For each
# mediabench program it runs the standard pipeline (emit → assemble →
# profile), squashes once silently and once with -trace/-metrics, and
# requires:
#
#   1. the two squashed images are byte-identical (telemetry is
#      observation-only — the zero-cost-when-off guarantee);
#   2. the trace JSON parses as Chrome trace-event format and carries the
#      required pipeline spans (obscheck);
#   3. the metrics JSON parses and carries the squash_* counter families,
#      including the per-stream breakdown (obscheck);
#   4. em-run -stats-json emits valid execution-stats JSON for the
#      squashed image;
#   5. a squashd with -metrics-addr serves Prometheus text on /metrics,
#      the JSON snapshot on /metrics.json, and the pprof index.
#
# Artifacts (trace, metrics, stats JSON) are left in the directory named by
# $OBS_SMOKE_ARTIFACTS (if set) so CI can upload them.
#
# Usage: scripts/obs_smoke.sh [bench ...]   (default: adpcm)
set -euo pipefail
cd "$(dirname "$0")/.."

benches=("$@")
[ ${#benches[@]} -gt 0 ] || benches=(adpcm)

work=$(mktemp -d)
daemon_pid=""
cleanup() {
  if [ -n "$daemon_pid" ]; then
    kill "$daemon_pid" 2>/dev/null
    wait "$daemon_pid" 2>/dev/null
  fi
  rm -rf "$work"
}
trap cleanup EXIT
keep="${OBS_SMOKE_ARTIFACTS:-}"
[ -n "$keep" ] && mkdir -p "$keep"

echo "building tools..."
go build -o "$work" ./cmd/mediabench ./cmd/em-as ./cmd/em-run ./cmd/squash \
  ./cmd/squashd ./cmd/obscheck

for b in "${benches[@]}"; do
  echo "== $b =="
  "$work/mediabench" -only "$b" -dir "$work"
  "$work/em-as" -o "$work/$b.o" "$work/$b.s"
  "$work/em-as" -link -o "$work/$b.exe" "$work/$b.s"
  "$work/em-run" -in "$work/$b.prof.in" -profile "$work/$b.prof" \
    "$work/$b.exe" > /dev/null

  # Squash silently, then again with full telemetry (plus a post-squash
  # heap profile — the pooling work's steady-state retention artifact);
  # images must match.
  "$work/squash" -profile "$work/$b.prof" -theta 1.0 \
    -o "$work/$b.plain.exe" "$work/$b.o" > /dev/null
  "$work/squash" -profile "$work/$b.prof" -theta 1.0 \
    -trace "$work/$b.trace.json" -metrics "$work/$b.metrics.json" \
    -memprofile "$work/$b.heap.pprof" \
    -o "$work/$b.obs.exe" "$work/$b.o" > /dev/null 2> "$work/$b.summary.txt"
  cmp "$work/$b.plain.exe" "$work/$b.obs.exe" || {
    echo "FAIL: $b image changed when telemetry was attached" >&2; exit 1; }
  echo "$b images identical with and without telemetry"

  # Heap profiles are gzipped protobuf; check the magic so a truncated or
  # empty write fails here instead of when someone opens the artifact.
  [ "$(head -c2 "$work/$b.heap.pprof" | od -An -tx1 | tr -d ' ')" = "1f8b" ] || {
    echo "FAIL: $b heap profile is not a gzipped pprof file" >&2; exit 1; }
  echo "$b heap profile written ($(wc -c < "$work/$b.heap.pprof") bytes)"

  grep -q "squash" "$work/$b.summary.txt" || {
    echo "FAIL: $b trace summary missing the root span" >&2; exit 1; }

  # Validate the trace and metrics artifacts.
  "$work/obscheck" -trace "$work/$b.trace.json" -metrics "$work/$b.metrics.json"

  # The squashed image must run, and -stats-json must emit valid JSON
  # covering the simulator, runtime, and Huffman decode counters.
  "$work/em-run" -in "$work/$b.time.in" -stats-json "$work/$b.stats.json" \
    "$work/$b.obs.exe" > /dev/null
  python3 - "$work/$b.stats.json" <<'EOF'
import json, sys
st = json.load(open(sys.argv[1]))
for key in ("exit_status", "instructions", "cycles", "vm", "fast_steps", "runtime", "huffman"):
    assert key in st, f"missing {key}: {sorted(st)}"
assert st["instructions"] > 0 and st["cycles"] > 0
assert st["runtime"]["decompressions"] > 0, "squashed run should decompress"
print("stats-json ok:", st["instructions"], "instructions,",
      st["runtime"]["decompressions"], "decompressions")
EOF

  if [ -n "$keep" ]; then
    cp "$work/$b.trace.json" "$work/$b.metrics.json" "$work/$b.stats.json" \
       "$work/$b.summary.txt" "$work/$b.heap.pprof" "$keep/"
  fi
done

echo "== squashd HTTP metrics =="
b="${benches[0]}"
sock="unix:$work/squashd.sock"
http="127.0.0.1:${OBS_SMOKE_HTTP_PORT:-18321}"
"$work/squashd" -listen "$sock" -serve-workers 2 -metrics-addr "$http" \
  -trace "$work/squashd.trace.json" 2> "$work/squashd.log" &
daemon_pid=$!
for _ in $(seq 50); do
  "$work/squashd" -connect "$sock" -ping > /dev/null 2>&1 && break
  sleep 0.1
done
"$work/squashd" -connect "$sock" -theta 1.0 -profile "$work/$b.prof" \
  -o "$work/$b.daemon.exe" "$work/$b.o" > /dev/null
cmp "$work/$b.plain.exe" "$work/$b.daemon.exe" || {
  echo "FAIL: daemon image differs from one-shot (telemetry attached server-side)" >&2; exit 1; }

python3 - "$http" "$work" <<'EOF'
import json, sys, urllib.request
http, work = sys.argv[1], sys.argv[2]
prom = urllib.request.urlopen(f"http://{http}/metrics", timeout=5).read().decode()
for name in ("squashd_requests_total", "squashd_request_ms", "squash_runs_total", "pool_workers"):
    assert name in prom, f"/metrics missing {name}"
snap = json.load(urllib.request.urlopen(f"http://{http}/metrics.json", timeout=5))
counters = {c["name"] for c in snap["counters"]}
assert "squashd_requests_total" in counters, sorted(counters)
idx = urllib.request.urlopen(f"http://{http}/debug/pprof/", timeout=5).read().decode()
assert "goroutine" in idx, "pprof index did not render"
open(f"{work}/squashd.metrics.txt", "w").write(prom)
json.dump(snap, open(f"{work}/squashd.metrics.json", "w"), indent=2)
print("squashd HTTP metrics ok:", len(snap["counters"]), "counters")
EOF

kill -TERM "$daemon_pid"
wait "$daemon_pid" || { echo "FAIL: daemon exited non-zero on SIGTERM" >&2; exit 1; }
daemon_pid=""
"$work/obscheck" -trace "$work/squashd.trace.json" \
  -span squashd.request -span squash -span region.encode

if [ -n "$keep" ]; then
  cp "$work/squashd.trace.json" "$work/squashd.metrics.txt" \
     "$work/squashd.metrics.json" "$work/squashd.log" "$keep/"
fi

echo "obs smoke passed: ${benches[*]}"
