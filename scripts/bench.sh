#!/usr/bin/env bash
# bench.sh — run the fast-path microbenchmarks in a benchstat-friendly way.
#
# Each benchmark is a fast/slow pair executed in the same process
# (BenchmarkVMStep/{fast,slow}, BenchmarkHuffmanDecode/{table,tree},
# BenchmarkRegionDecompress/{memo,decode}, BenchmarkInterpRegionExec/
# {memo,decode}, BenchmarkLZDecode/*/{table,tree}), so the within-run ratio
# is meaningful even on noisy shared machines. -count repetitions give
# benchstat enough samples for a confidence interval:
#
#   scripts/bench.sh > new.txt
#   benchstat old.txt new.txt        # or: benchstat new.txt  (ratios only)
#
# CI runs COUNT=1 and pipes the output into cmd/benchhist, which appends the
# per-commit pair ratios to BENCH_history.json and fails on a regression
# past the pair's floor.
#
# -benchmem is always on: the allocs/op and B/op columns ride along in the
# same output (benchhist ignores them here; scripts/alloc_gate.sh runs the
# dedicated pooled/fresh allocation pairs and gates on those columns).
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${COUNT:-6}"
BENCHTIME="${BENCHTIME:-1s}"

go test -run '^$' \
  -bench 'BenchmarkVMStep|BenchmarkHuffmanDecode|BenchmarkBitReaderReadBits|BenchmarkRegionDecompress|BenchmarkInterpRegionExec|BenchmarkLZDecode' \
  -benchtime "$BENCHTIME" -count "$COUNT" -benchmem \
  ./internal/vm/ ./internal/huffman/ ./internal/core/ ./internal/lzcomp/
