#!/usr/bin/env bash
# bench.sh — run the fast-path microbenchmarks in a benchstat-friendly way.
#
# Each benchmark is a fast/slow pair executed in the same process
# (BenchmarkVMStep/{fast,slow}, BenchmarkHuffmanDecode/{table,tree},
# BenchmarkRegionDecompress/{memo,decode}), so the within-run ratio is
# meaningful even on noisy shared machines. -count repetitions give
# benchstat enough samples for a confidence interval:
#
#   scripts/bench.sh > new.txt
#   benchstat old.txt new.txt        # or: benchstat new.txt  (ratios only)
#
# COUNT=1 scripts/bench.sh gives a quick single pass (CI uses this).
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${COUNT:-6}"
BENCHTIME="${BENCHTIME:-1s}"

go test -run '^$' \
  -bench 'BenchmarkVMStep|BenchmarkHuffmanDecode|BenchmarkBitReaderReadBits|BenchmarkRegionDecompress' \
  -benchtime "$BENCHTIME" -count "$COUNT" \
  ./internal/vm/ ./internal/huffman/ ./internal/core/
