#!/usr/bin/env bash
# cluster_smoke.sh — end-to-end proof of the squashrouter tier. It:
#
#   1. checks byte-identity through the router for every routing policy
#      (hash, least-conn, ordered): batch frames through a 3-backend
#      cluster must produce SHA-256-identical images to one-shot
#      cmd/squash, with within-batch sharing intact;
#   2. records a seeded multi-key request mix, replays it with
#      cmd/squashload against a fresh single daemon (the hit-rate
#      baseline), then against a fresh 3-backend hash-routed cluster, and
#      requires each backend's result-cache hit rate to be no worse than
#      the single-daemon baseline (content sharding must keep per-backend
#      LRUs as warm as one big LRU);
#   3. kills one backend mid-replay and requires zero client-visible
#      errors (squashload exits non-zero on any failed request) plus
#      byte-identical images from the survivors;
#   4. exercises the squashctl admin plane: list, drain/undrain steering,
#      and the merged stats snapshot (saved as an artifact).
#
# Usage: scripts/cluster_smoke.sh [bench1 bench2]   (default: adpcm g721_enc)
set -euo pipefail
cd "$(dirname "$0")/.."

bench1="${1:-adpcm}"
bench2="${2:-g721_enc}"

work=$(mktemp -d)
pids=()
cleanup() {
  for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
  rm -rf "$work"
}
trap cleanup EXIT

echo "building tools..."
go build -o "$work" ./cmd/mediabench ./cmd/em-as ./cmd/em-run ./cmd/squash \
  ./cmd/squashd ./cmd/squashload ./cmd/squashrouter ./cmd/squashctl

wait_up() { # wait_up ADDR
  for _ in $(seq 50); do
    "$work/squashd" -connect "$1" -ping > /dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "FAIL: no daemon answering at $1" >&2
  exit 1
}

echo "== preparing $bench1 and an inline workload =="
"$work/mediabench" -only "$bench1" -dir "$work"
"$work/em-as" -o "$work/$bench1.o" "$work/$bench1.s"
"$work/em-as" -link -o "$work/$bench1.exe" "$work/$bench1.s"
"$work/em-run" -in "$work/$bench1.prof.in" -profile "$work/$bench1.prof" \
  "$work/$bench1.exe" > /dev/null
"$work/squash" -profile "$work/$bench1.prof" -o "$work/$bench1.oneshot.exe" \
  "$work/$bench1.o" > /dev/null
h_one=$(sha256sum "$work/$bench1.oneshot.exe" | cut -d' ' -f1)

# Three fresh backends for the policy identity checks.
backs=()
for i in 1 2 3; do
  sock="unix:$work/backend$i.sock"
  "$work/squashd" -listen "$sock" -serve-workers 2 2> "$work/backend$i.log" &
  pids+=($!)
  backs+=("$sock")
done
for b in "${backs[@]}"; do wait_up "$b"; done
backends_csv=$(IFS=,; echo "${backs[*]}")

# Reference image for the server-prepared benchmark item, straight from a
# backend (server-side preparation is deterministic, so every backend —
# and therefore every routed response — must reproduce these exact bytes).
"$work/squashd" -connect "${backs[0]}" -bench "$bench1" -o "$work/$bench1.ref.exe" > /dev/null
h_bench=$(sha256sum "$work/$bench1.ref.exe" | cut -d' ' -f1)

echo "== byte-identity per routing policy =="
for policy in hash least-conn ordered; do
  front="unix:$work/router-$policy.sock"
  "$work/squashrouter" -listen "$front" -backends "$backends_csv" \
    -route "$policy" -check-interval 500ms 2> "$work/router-$policy.log" &
  rpid=$!
  pids+=($rpid)
  wait_up "$front"
  for proto in 1 2; do
    out="$work/$policy-v$proto"
    mkdir -p "$out"
    "$work/squashd" -connect "$front" -proto "$proto" -out-dir "$out" \
      -batch "$work/$bench1.o:$work/$bench1.prof,$work/$bench1.o:$work/$bench1.prof,$bench1" \
      > "$out/batch.out"
    for img in batch-00 batch-01; do
      h=$(sha256sum "$out/$img.sqz.exe" | cut -d' ' -f1)
      if [ "$h" != "$h_one" ]; then
        echo "FAIL: $policy v$proto $img differs from one-shot squash ($h vs $h_one)" >&2
        exit 1
      fi
    done
    h=$(sha256sum "$out/batch-02.sqz.exe" | cut -d' ' -f1)
    if [ "$h" != "$h_bench" ]; then
      echo "FAIL: $policy v$proto bench item differs from direct-backend output ($h vs $h_bench)" >&2
      exit 1
    fi
    grep -q "shared in batch" "$out/batch.out" || {
      echo "FAIL: $policy v$proto lost within-batch sharing across the split" >&2
      exit 1
    }
  done
  kill -TERM "$rpid"; wait "$rpid" || { echo "FAIL: router ($policy) exited non-zero on SIGTERM" >&2; exit 1; }
  echo "$policy: v1+v2 batch images identical to one-shot (sha256 $h_one)"
done

echo "== recording a seeded multi-key mix =="
rec_sock="unix:$work/recorder.sock"
stream="$work/stream.jsonl"
"$work/squashd" -listen "$rec_sock" -serve-workers 2 -record "$stream" \
  2> "$work/recorder.log" &
rec_pid=$!
pids+=($rec_pid)
wait_up "$rec_sock"
# Three distinct keys (two named benchmarks plus the inline object), four
# arrivals each, spaced so the replay window is long enough to kill a
# backend inside it.
for _ in 1 2 3 4; do
  "$work/squashd" -connect "$rec_sock" -bench "$bench1" -o "$work/seed.exe" > /dev/null
  "$work/squashd" -connect "$rec_sock" -bench "$bench2" -o "$work/seed.exe" > /dev/null
  "$work/squashd" -connect "$rec_sock" -profile "$work/$bench1.prof" \
    -o "$work/seed.exe" "$work/$bench1.o" > /dev/null
  sleep 0.4
done
kill -TERM "$rec_pid"; wait "$rec_pid" || true
echo "recorded $(wc -l < "$stream") arrivals"

echo "== single-daemon baseline replay =="
base_sock="unix:$work/baseline.sock"
"$work/squashd" -listen "$base_sock" -serve-workers 6 2> "$work/baseline.log" &
base_pid=$!
pids+=($base_pid)
wait_up "$base_sock"
"$work/squashload" -connect "$base_sock" -replay "$stream" -rate 2 -conns 2 \
  -fallback-obj "$work/$bench1.o" -fallback-profile "$work/$bench1.prof" \
  -out "$work/baseline.json"
kill -TERM "$base_pid"; wait "$base_pid" || true
base_rate=$(jq -r '.cache_hit_rate' "$work/baseline.json")
echo "baseline hit rate: $base_rate"

echo "== 3-backend hash cluster: warm replay, per-backend hit rates =="
cbacks=()
cpids=()
for i in 1 2 3; do
  sock="unix:$work/cback$i.sock"
  "$work/squashd" -listen "$sock" -serve-workers 2 2> "$work/cback$i.log" &
  cpids+=($!)
  pids+=($!)
  cbacks+=("$sock")
done
for b in "${cbacks[@]}"; do wait_up "$b"; done
cbackends_csv=$(IFS=,; echo "${cbacks[*]}")
front="unix:$work/router.sock"
admin="unix:$work/router-admin.sock"
"$work/squashrouter" -listen "$front" -admin "$admin" -backends "$cbackends_csv" \
  -route hash -check-interval 300ms -fail-after 2 2> "$work/router.log" &
router_pid=$!
pids+=($router_pid)
wait_up "$front"

"$work/squashload" -connect "$front" -replay "$stream" -rate 2 -conns 2 \
  -fallback-obj "$work/$bench1.o" -fallback-profile "$work/$bench1.prof" \
  -out "$work/cluster.json"
cluster_rate=$(jq -r '.cache_hit_rate' "$work/cluster.json")
echo "cluster aggregate hit rate: $cluster_rate (baseline $base_rate)"

# Per-backend rates straight from each backend's own stats. Backends that
# own no keys (possible with 3 keys over 3 shards) are skipped.
slack="${CLUSTER_HITRATE_SLACK:-0.02}"
for b in "${cbacks[@]}"; do
  rate=$("$work/squashd" -connect "$b" -stats | jq -r \
    'if (.squash_cache_hits + .squash_cache_misses) > 0
     then (.squash_cache_hits / (.squash_cache_hits + .squash_cache_misses))
     else "idle" end')
  echo "backend $b hit rate: $rate"
  [ "$rate" = "idle" ] && continue
  awk -v r="$rate" -v base="$base_rate" -v s="$slack" \
    'BEGIN { exit !(r >= base - s) }' || {
    echo "FAIL: backend $b hit rate $rate below single-daemon baseline $base_rate" >&2
    exit 1
  }
done

echo "== squashctl admin plane =="
"$work/squashctl" -connect "$admin" ping
"$work/squashctl" -connect "$admin" list
"$work/squashctl" -connect "$admin" drain "${cbacks[1]}" > /dev/null
"$work/squashctl" -connect "$admin" -json list > "$work/drained.json"
state=$(jq -r '.backends[1].state' "$work/drained.json")
if [ "$state" != "draining" ]; then
  echo "FAIL: backend 1 state after drain is $state, want draining" >&2
  exit 1
fi
"$work/squashctl" -connect "$admin" undrain "${cbacks[1]}" > /dev/null
"$work/squashctl" -connect "$admin" -json list > "$work/merged_stats.json"
state=$(jq -r '.backends[1].state' "$work/merged_stats.json")
if [ "$state" != "up" ]; then
  echo "FAIL: backend 1 state after undrain is $state, want up" >&2
  exit 1
fi

echo "== kill one backend mid-replay: zero client-visible errors =="
( sleep 1; kill -TERM "${cpids[2]}" ) &
killer=$!
# squashload exits non-zero when any request fails, so this line IS the
# zero-errors assertion.
"$work/squashload" -connect "$front" -replay "$stream" -rate 1 -conns 2 \
  -fallback-obj "$work/$bench1.o" -fallback-profile "$work/$bench1.prof" \
  -out "$work/cluster_kill.json"
wait "$killer"
errors=$(jq -r '.errors' "$work/cluster_kill.json")
if [ "$errors" != "0" ]; then
  echo "FAIL: $errors client-visible errors during backend kill" >&2
  exit 1
fi
# Survivors still serve byte-identical images.
mkdir -p "$work/postkill"
"$work/squashd" -connect "$front" -out-dir "$work/postkill" \
  -batch "$work/$bench1.o:$work/$bench1.prof,$bench1" > /dev/null
h=$(sha256sum "$work/postkill/batch-00.sqz.exe" | cut -d' ' -f1)
if [ "$h" != "$h_one" ]; then
  echo "FAIL: post-kill inline image differs from one-shot squash" >&2
  exit 1
fi
h=$(sha256sum "$work/postkill/batch-01.sqz.exe" | cut -d' ' -f1)
if [ "$h" != "$h_bench" ]; then
  echo "FAIL: post-kill bench image differs from direct-backend output" >&2
  exit 1
fi
"$work/squashctl" -connect "$admin" list | tee "$work/postkill_list.out"
grep -q "down" "$work/postkill_list.out" || {
  echo "FAIL: killed backend never marked down" >&2
  exit 1
}

if [ -n "${CLUSTER_SMOKE_ARTIFACTS:-}" ]; then
  mkdir -p "$CLUSTER_SMOKE_ARTIFACTS"
  cp "$work/baseline.json" "$work/cluster.json" "$work/cluster_kill.json" \
    "$work/merged_stats.json" "$work/router.log" "$CLUSTER_SMOKE_ARTIFACTS/"
fi

kill -TERM "$router_pid"; wait "$router_pid" || { echo "FAIL: router exited non-zero on SIGTERM" >&2; exit 1; }

echo "cluster smoke passed: policies identical, failover clean, per-backend caches >= baseline"
