#!/usr/bin/env bash
# load_smoke.sh — end-to-end proof of the throughput engine. Against a live
# squashd started with -record it:
#
#   1. sends a batch frame mixing inline objects (with duplicates) and a
#      named benchmark, and requires each batch image to be byte-identical
#      (SHA-256) to one-shot cmd/squash on the same inputs, with the
#      duplicate served as a within-batch share;
#   2. seeds a realistic request mix (one-shot, bench, batch) so the
#      -record stream captures real arrivals;
#   3. replays the recorded stream with cmd/squashload at 2x the recorded
#      rate and writes the JSON load report;
#   4. gates the report through `benchhist -load`: req/s below its floor,
#      p99 above its ceiling, a cold cache, or any failed request fails
#      this script — and with it the load-smoke CI job.
#
# Usage: scripts/load_smoke.sh [bench]   (default: adpcm)
set -euo pipefail
cd "$(dirname "$0")/.."

bench="${1:-adpcm}"

work=$(mktemp -d)
daemon_pid=""
cleanup() {
  [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null
  rm -rf "$work"
}
trap cleanup EXIT

echo "building tools..."
go build -o "$work" ./cmd/mediabench ./cmd/em-as ./cmd/em-run ./cmd/squash \
  ./cmd/squashd ./cmd/squashload ./cmd/benchhist

sock="unix:$work/squashd.sock"
stream="$work/stream.jsonl"
"$work/squashd" -listen "$sock" -serve-workers 4 -record "$stream" \
  2> "$work/squashd.log" &
daemon_pid=$!
for _ in $(seq 50); do
  "$work/squashd" -connect "$sock" -ping > /dev/null 2>&1 && break
  sleep 0.1
done
"$work/squashd" -connect "$sock" -ping

echo "== preparing $bench =="
"$work/mediabench" -only "$bench" -dir "$work"
"$work/em-as" -o "$work/$bench.o" "$work/$bench.s"
"$work/em-as" -link -o "$work/$bench.exe" "$work/$bench.s"
"$work/em-run" -in "$work/$bench.prof.in" -profile "$work/$bench.prof" \
  "$work/$bench.exe" > /dev/null

echo "== batch byte-identity =="
"$work/squash" -profile "$work/$bench.prof" -o "$work/$bench.oneshot.exe" \
  "$work/$bench.o" > /dev/null
# Three items in one frame: the object twice (the repeat must be served as
# a within-batch share) plus a server-prepared named benchmark.
"$work/squashd" -connect "$sock" -out-dir "$work" \
  -batch "$work/$bench.o:$work/$bench.prof,$work/$bench.o:$work/$bench.prof,$bench" \
  | tee "$work/batch.out"
h_one=$(sha256sum "$work/$bench.oneshot.exe" | cut -d' ' -f1)
h_b0=$(sha256sum "$work/batch-00.sqz.exe" | cut -d' ' -f1)
h_b1=$(sha256sum "$work/batch-01.sqz.exe" | cut -d' ' -f1)
if [ "$h_one" != "$h_b0" ] || [ "$h_one" != "$h_b1" ]; then
  echo "FAIL: batch images differ from one-shot squash ($h_one vs $h_b0 / $h_b1)" >&2
  exit 1
fi
echo "batch images identical to one-shot: sha256 $h_one"
grep -q "shared in batch" "$work/batch.out" || {
  echo "FAIL: duplicate batch item was not served as a within-batch share" >&2
  exit 1
}

echo "== seeding the recorded stream =="
for _ in 1 2 3; do
  "$work/squashd" -connect "$sock" -bench "$bench" \
    -o "$work/$bench.seed.exe" > /dev/null
done
"$work/squashd" -connect "$sock" -profile "$work/$bench.prof" \
  -o "$work/$bench.seed2.exe" "$work/$bench.o" > /dev/null
test -s "$stream" || { echo "FAIL: -record produced no stream" >&2; exit 1; }
echo "recorded $(wc -l < "$stream") arrivals"

echo "== replaying at 2x =="
"$work/squashload" -connect "$sock" -replay "$stream" -rate 2 -conns 4 \
  -fallback-obj "$work/$bench.o" -fallback-profile "$work/$bench.prof" \
  -out "$work/report.json"
test -s "$work/report.json" || { echo "FAIL: no load report" >&2; exit 1; }

echo "== gating the report =="
"$work/benchhist" -load "$work/report.json" \
  -history BENCH_history.json -commit "${GITHUB_SHA:-local}"

if [ -n "${LOAD_SMOKE_ARTIFACTS:-}" ]; then
  mkdir -p "$LOAD_SMOKE_ARTIFACTS"
  cp "$stream" "$work/report.json" "$work/squashd.log" "$LOAD_SMOKE_ARTIFACTS/"
fi

kill -TERM "$daemon_pid"
wait "$daemon_pid" || { echo "FAIL: daemon exited non-zero on SIGTERM" >&2; exit 1; }
daemon_pid=""

echo "load smoke passed: $bench"
