#!/usr/bin/env bash
# profile_smoke.sh — end-to-end proof of the continuous-profiling plane.
# For each mediabench program it squashes with a training profile, registers
# the image with a live squashprofd collector, and then simulates a fleet:
# em-run -profile-push ships real execution profiles to the collector after
# each run. Steady-state pushes (the training workload) must show zero
# drift and must NOT trigger a re-squash; a pathology-input push (a
# workload dominated by profile-cold trigger bytes) must drive drift past
# the daemon's -resquash-threshold and fire the AUTOMATIC re-squash, which
# must verify byte-identically (output_ok in the status report) — and the
# re-squashed image written to -out-dir must produce the same program
# output under em-run as the image it replaced. A second, operator-forced
# re-squash of the new generation then exercises the forced path
# ("output identical: true"). The collector's /metrics endpoint must
# export the per-image profilefeed_* families (drift score, weights, miss
# before/after), which are saved as an artifact when
# PROFILE_SMOKE_ARTIFACTS is set. Finally SIGTERM must drain cleanly.
#
# Usage: scripts/profile_smoke.sh [bench ...]   (default: adpcm)
set -euo pipefail
cd "$(dirname "$0")/.."

benches=("$@")
[ ${#benches[@]} -gt 0 ] || benches=(adpcm)

THETA=0.0001
THRESHOLD=0.2
METRICS_PORT="${PROFILE_SMOKE_METRICS_PORT:-9193}"

work=$(mktemp -d)
daemon_pid=""
cleanup() {
  [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null
  rm -rf "$work"
}
trap cleanup EXIT

echo "building tools..."
go build -o "$work" ./cmd/mediabench ./cmd/em-as ./cmd/em-run ./cmd/squash ./cmd/squashprofd

sock="unix:$work/profd.sock"
"$work/squashprofd" -listen "$sock" -store "$work/store" \
  -resquash-threshold "$THRESHOLD" -min-samples 1 -cooldown 1s \
  -out-dir "$work/out" -metrics-addr "127.0.0.1:$METRICS_PORT" \
  2> "$work/profd.log" &
daemon_pid=$!
for _ in $(seq 50); do
  "$work/squashprofd" -connect "$sock" -ping > /dev/null 2>&1 && break
  sleep 0.1
done
"$work/squashprofd" -connect "$sock" -ping

# feed_field KEY FIELD — one field of the image's status from -status
# -json, via a jq-ish python path ("drift.score", "resquashes", ...).
feed_field() {
  "$work/squashprofd" -connect "$sock" -status -json | python3 -c '
import json, sys
key, path = sys.argv[1], sys.argv[2]
for im in json.load(sys.stdin)["images"]:
    if im["key"] != key:
        continue
    v = im
    for part in path.split("."):
        v = v.get(part) if isinstance(v, dict) else None
        if v is None:
            break
    print(v if v is not None else "")
    break
' "$1" "$2"
}

for b in "${benches[@]}"; do
  echo "== $b =="
  "$work/mediabench" -only "$b" -dir "$work"
  "$work/em-as" -o "$work/$b.o" "$work/$b.s"
  "$work/em-as" -link -o "$work/$b.exe" "$work/$b.s"
  "$work/em-run" -in "$work/$b.prof.in" -profile "$work/$b.prof" \
    "$work/$b.exe" > /dev/null
  "$work/squash" -theta "$THETA" -profile "$work/$b.prof" \
    -o "$work/$b.sqz.exe" "$work/$b.o" > /dev/null

  # Register the deployed image: the object + profile + config it was
  # squashed from, plus the training input as the verification workload.
  "$work/squashprofd" -connect "$sock" -register "$work/$b.sqz.exe" \
    -obj "$work/$b.o" -prof "$work/$b.prof" -input "$work/$b.prof.in" \
    -theta "$THETA" | tee "$work/$b.register.out"
  key=$(sed -n 's/^registered .* as \([0-9a-f]*\)$/\1/p' "$work/$b.register.out")
  [ -n "$key" ] || { echo "FAIL: $b register printed no key" >&2; exit 1; }

  # Steady state: the fleet runs the workload the image was squashed for.
  # The live aggregate must match the baseline exactly — zero drift, and
  # no re-squash fires even though the threshold is armed.
  "$work/em-run" -in "$work/$b.prof.in" -profile-push "$sock" \
    "$work/$b.sqz.exe" > /dev/null
  steady=$(feed_field "$key" drift.score)
  if ! python3 -c "import sys; sys.exit(0 if float('$steady') == 0.0 else 1)"; then
    echo "FAIL: $b steady-state drift is $steady, want 0" >&2
    exit 1
  fi
  if [ "$(feed_field "$key" resquashes)" != "" ]; then
    echo "FAIL: $b re-squash fired on the steady-state workload" >&2
    exit 1
  fi
  echo "$b: steady-state drift $steady, no re-squash"

  # Workload shift: the pathology input keeps profile-cold code hot. The
  # push must drive drift past the threshold and fire the AUTOMATIC
  # re-squash inside the collector.
  "$work/em-run" -in "$work/$b.path.in" -profile-push "$sock" \
    "$work/$b.sqz.exe" > "$work/$b.path.old.out"
  if [ "$(feed_field "$key" resquashes)" != "1" ]; then
    echo "FAIL: $b automatic re-squash did not fire on the shifted workload" >&2
    exit 1
  fi
  shifted=$(feed_field "$key" last_resquash.drift_score)
  if ! python3 -c "import sys; sys.exit(0 if float('$shifted') >= float('$THRESHOLD') else 1)"; then
    echo "FAIL: $b recorded drift $shifted below threshold $THRESHOLD" >&2
    exit 1
  fi
  if [ "$(feed_field "$key" last_resquash.output_ok)" != "True" ]; then
    echo "FAIL: $b automatic re-squash was not verified output-identical" >&2
    exit 1
  fi
  newkey=$(feed_field "$key" current_key)
  if [ -z "$newkey" ] || [ "$newkey" = "$key" ]; then
    echo "FAIL: $b image key did not roll after the automatic re-squash" >&2
    exit 1
  fi
  echo "$b: automatic re-squash fired at drift $shifted ($key -> $newkey)"

  # Independent check under em-run: the adopted image from -out-dir
  # computes the same function on the shifted workload as the image it
  # replaced.
  [ -f "$work/out/$newkey.sqz.exe" ] || {
    echo "FAIL: $b re-squashed image missing from -out-dir" >&2
    exit 1
  }
  "$work/em-run" -in "$work/$b.path.in" "$work/out/$newkey.sqz.exe" \
    > "$work/$b.path.new.out"
  cmp "$work/$b.path.old.out" "$work/$b.path.new.out" || {
    echo "FAIL: $b re-squashed image output differs on the shifted workload" >&2
    exit 1
  }

  # Operator-forced path on the new generation: below threshold (fresh
  # window), so -force is required, and verification must hold again.
  "$work/squashprofd" -connect "$sock" -resquash "$newkey" -force \
    -o "$work/$b.resqz.exe" | tee "$work/$b.resquash.out"
  grep -q "output identical: true" "$work/$b.resquash.out" || {
    echo "FAIL: $b forced re-squash was not verified output-identical" >&2
    exit 1
  }
  "$work/em-run" -in "$work/$b.path.in" "$work/$b.resqz.exe" > "$work/$b.path.forced.out"
  cmp "$work/$b.path.old.out" "$work/$b.path.forced.out" || {
    echo "FAIL: $b forced re-squash image output differs" >&2
    exit 1
  }
  echo "$b: forced re-squash of the new generation verified"
done

# The metrics endpoint must export the per-image profile-plane families.
curl -fsS "http://127.0.0.1:$METRICS_PORT/metrics" > "$work/metrics.txt"
for family in profilefeed_drift_score profilefeed_live_weight \
  profilefeed_samples profilefeed_resquashes profilefeed_miss_before \
  profilefeed_miss_after; do
  grep -q "^$family" "$work/metrics.txt" || {
    echo "FAIL: /metrics is missing $family" >&2
    exit 1
  }
done
curl -fsS "http://127.0.0.1:$METRICS_PORT/metrics.json" > "$work/metrics.json"
python3 -m json.tool < "$work/metrics.json" > /dev/null
echo "metrics endpoint exports the profilefeed_* families"

if [ -n "${PROFILE_SMOKE_ARTIFACTS:-}" ]; then
  mkdir -p "$PROFILE_SMOKE_ARTIFACTS"
  cp "$work/metrics.txt" "$work/metrics.json" "$work/profd.log" "$PROFILE_SMOKE_ARTIFACTS/"
  for b in "${benches[@]}"; do
    cp "$work/$b.resquash.out" "$PROFILE_SMOKE_ARTIFACTS/" 2>/dev/null || true
  done
  echo "artifacts in $PROFILE_SMOKE_ARTIFACTS"
fi

# Clean drain under SIGTERM.
kill -TERM "$daemon_pid"
wait "$daemon_pid"
daemon_pid=""
echo "profile smoke OK"
