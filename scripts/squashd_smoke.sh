#!/usr/bin/env bash
# squashd_smoke.sh — end-to-end proof that the serve-mode daemon is
# byte-compatible with the one-shot tool. For each mediabench program it
# runs the standard pipeline (emit → assemble → profile), squashes once with
# cmd/squash and once through a live squashd socket, and requires identical
# SHA-256 of the two images. The same request is then repeated to confirm
# the daemon's warm result cache serves hits (visible in -stats) that are
# still byte-identical. A proto-compat leg then crosses protocol versions:
# clients pinned to v1 and v2 against the default (v2) daemon, and an
# unpinned client plus a pinned-v1 client against a second daemon capped at
# proto v1 with pooling off — every image must hash identically to the
# one-shot squash regardless of wire framing or pooling. Finally the daemon
# is shut down with SIGTERM and must exit cleanly.
#
# Usage: scripts/squashd_smoke.sh [bench ...]   (default: adpcm)
set -euo pipefail
cd "$(dirname "$0")/.."

benches=("$@")
[ ${#benches[@]} -gt 0 ] || benches=(adpcm)

work=$(mktemp -d)
daemon_pid=""
old_pid=""
cleanup() {
  [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null
  [ -n "$old_pid" ] && kill "$old_pid" 2>/dev/null
  rm -rf "$work"
}
trap cleanup EXIT

echo "building tools..."
go build -o "$work" ./cmd/mediabench ./cmd/em-as ./cmd/em-run ./cmd/squash ./cmd/squashd

sock="unix:$work/squashd.sock"
"$work/squashd" -listen "$sock" -serve-workers 4 2> "$work/squashd.log" &
daemon_pid=$!
for _ in $(seq 50); do
  "$work/squashd" -connect "$sock" -ping > /dev/null 2>&1 && break
  sleep 0.1
done
"$work/squashd" -connect "$sock" -ping

for b in "${benches[@]}"; do
  echo "== $b =="
  "$work/mediabench" -only "$b" -dir "$work"
  "$work/em-as" -o "$work/$b.o" "$work/$b.s"
  "$work/em-as" -link -o "$work/$b.exe" "$work/$b.s"
  "$work/em-run" -in "$work/$b.prof.in" -profile "$work/$b.prof" \
    "$work/$b.exe" > /dev/null

  "$work/squash" -profile "$work/$b.prof" -o "$work/$b.oneshot.exe" "$work/$b.o" > /dev/null
  "$work/squashd" -connect "$sock" -profile "$work/$b.prof" \
    -o "$work/$b.daemon.exe" "$work/$b.o"
  h1=$(sha256sum "$work/$b.oneshot.exe" | cut -d' ' -f1)
  h2=$(sha256sum "$work/$b.daemon.exe" | cut -d' ' -f1)
  if [ "$h1" != "$h2" ]; then
    echo "FAIL: $b daemon image differs from one-shot squash ($h1 vs $h2)" >&2
    exit 1
  fi
  echo "$b images identical: sha256 $h1"

  # Repeat: must come from the warm cache and still match. Capture then
  # grep — piping straight into `grep -q` races its early exit against the
  # client's second output line, and under pipefail the client's SIGPIPE
  # fails the pipeline even though the match succeeded.
  repeat_out=$("$work/squashd" -connect "$sock" -profile "$work/$b.prof" \
    -o "$work/$b.daemon2.exe" "$work/$b.o")
  grep -q "warm cache" <<< "$repeat_out" || {
      echo "FAIL: $b repeat request did not hit the warm cache" >&2; exit 1; }
  cmp "$work/$b.daemon.exe" "$work/$b.daemon2.exe" || {
    echo "FAIL: $b cached image differs from first response" >&2; exit 1; }

  # The daemon's image must actually run and match the one-shot image's
  # behaviour on the timing input.
  "$work/em-run" -in "$work/$b.time.in" "$work/$b.daemon.exe" > "$work/$b.daemon.out"
  "$work/em-run" -in "$work/$b.time.in" "$work/$b.oneshot.exe" > "$work/$b.oneshot.out"
  cmp "$work/$b.daemon.out" "$work/$b.oneshot.out" || {
    echo "FAIL: $b squashed outputs differ between daemon and one-shot" >&2; exit 1; }
done

echo "-- proto-compat --"
b="${benches[0]}"
want=$(sha256sum "$work/$b.oneshot.exe" | cut -d' ' -f1)

# Clients pinned to each protocol version against the default (v2) daemon.
for pv in 1 2; do
  "$work/squashd" -connect "$sock" -proto "$pv" -profile "$work/$b.prof" \
    -o "$work/$b.proto$pv.exe" "$work/$b.o" > /dev/null
  h=$(sha256sum "$work/$b.proto$pv.exe" | cut -d' ' -f1)
  [ "$h" = "$want" ] || {
    echo "FAIL: pinned proto v$pv image differs from one-shot ($h vs $want)" >&2; exit 1; }
done
echo "pinned v1/v2 clients match one-shot: sha256 $want"

# A stats-only request must omit image bytes but report real stats.
noimg_out=$("$work/squashd" -connect "$sock" -noimage -profile "$work/$b.prof" \
  -o "$work/$b.noimg.exe" "$work/$b.o")
grep -q "image omitted" <<< "$noimg_out" || {
  echo "FAIL: -noimage response still carried an image" >&2; exit 1; }
[ ! -e "$work/$b.noimg.exe" ] || {
  echo "FAIL: -noimage wrote an image file" >&2; exit 1; }

# A daemon capped at proto v1 with pooling off, standing in for a pre-v2
# build: a negotiating client must downgrade transparently, a pinned-v1
# client must interop, and both must produce one-shot-identical bytes.
old_sock="unix:$work/squashd_v1.sock"
"$work/squashd" -listen "$old_sock" -serve-workers 2 -proto-max 1 -nopool \
  2> "$work/squashd_v1.log" &
old_pid=$!
for _ in $(seq 50); do
  "$work/squashd" -connect "$old_sock" -ping > /dev/null 2>&1 && break
  sleep 0.1
done
ping_out=$("$work/squashd" -connect "$old_sock" -ping)
grep -q "proto v1" <<< "$ping_out" || {
  echo "FAIL: client did not downgrade against the v1-capped daemon: $ping_out" >&2; exit 1; }
for pv in 0 1; do
  "$work/squashd" -connect "$old_sock" -proto "$pv" -profile "$work/$b.prof" \
    -o "$work/$b.capped$pv.exe" "$work/$b.o" > /dev/null
  h=$(sha256sum "$work/$b.capped$pv.exe" | cut -d' ' -f1)
  [ "$h" = "$want" ] || {
    echo "FAIL: v1-capped daemon (client -proto $pv) image differs ($h vs $want)" >&2; exit 1; }
done
echo "v1-capped -nopool daemon matches one-shot: sha256 $want"

kill -TERM "$old_pid"
wait "$old_pid" || { echo "FAIL: v1-capped daemon exited non-zero on SIGTERM" >&2; exit 1; }
old_pid=""

echo "-- stats --"
"$work/squashd" -connect "$sock" -stats | tee "$work/stats.json"
grep -q '"squash_cache_hits": [1-9]' "$work/stats.json" || {
  echo "FAIL: stats report no warm-cache hits" >&2; exit 1; }

kill -TERM "$daemon_pid"
wait "$daemon_pid" || { echo "FAIL: daemon exited non-zero on SIGTERM" >&2; exit 1; }
daemon_pid=""

echo "squashd smoke passed: ${benches[*]}"
