#!/usr/bin/env bash
# alloc_gate.sh — run the pooled/fresh allocation benchmark pairs.
#
# Each pooled hot path ships a paired benchmark that measures the same work
# with pools enabled and with pools bypassed the way the code allocated
# before pooling (BenchmarkBitIOAlloc/{pooled,fresh}, BenchmarkRegionEncode-
# Alloc, BenchmarkLZTokenDecodeAlloc, BenchmarkRequestScratch, and
# BenchmarkFrameCodecAlloc — the v2/v1 wire codec pair). This script runs
# them all with -benchmem; CI pipes the output into
#
#   go run ./cmd/benchhist -allocs alloc.txt
#
# which appends the pooled and fresh allocs/op + B/op medians to
# BENCH_history.json and fails if a pooled path regressed past its
# allocs/op ceiling or the fresh/pooled ratio fell under its floor.
#
# -benchtime is iteration-count based (default 200x), not duration based:
# Go reports allocs/op as an integer average over the run, so a fixed count
# makes pool warm-up (a handful of allocations on the first iterations)
# round to the same digit on every machine instead of flaking with speed.
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${COUNT:-3}"
BENCHTIME="${BENCHTIME:-200x}"

go test -run '^$' \
  -bench 'BenchmarkBitIOAlloc|BenchmarkRegionEncodeAlloc|BenchmarkLZTokenDecodeAlloc|BenchmarkRequestScratch|BenchmarkFrameCodecAlloc' \
  -benchtime "$BENCHTIME" -count "$COUNT" -benchmem \
  ./internal/huffman/ ./internal/streamcomp/ ./internal/lzcomp/ ./internal/serve/
