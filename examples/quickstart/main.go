// Quickstart: the complete squash pipeline on a small hand-written program.
//
// It assembles an EM32 program with a hot loop and a cold error handler,
// profiles it, compresses the cold code with squash, and runs the squashed
// binary to show that behaviour is preserved while the cold code now lives
// in compressed form and is decompressed on demand.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/objfile"
	"repro/internal/vm"
)

const program = `
        ; Echo input bytes, uppercasing letters; a '!' triggers the cold
        ; error path, which is never seen during profiling.
        .text
        .func main
        lda  sp, -16(sp)
        stw  ra, 0(sp)
loop:   sys  getc
        blt  v0, done
        cmpeq v0, 33, t0        ; '!'
        bne  t0, rare
        mov  v0, a0
        bsr  ra, upper
        mov  v0, a0
        sys  putc
        br   loop
rare:   bsr  ra, panic_handler
        br   loop
done:   ldw  ra, 0(sp)
        lda  sp, 16(sp)
        clr  a0
        sys  halt

        .func upper             ; hot: stays uncompressed
        mov  a0, v0
        cmpult v0, 97, t0       ; below 'a'?
        bne  t0, upok
        cmpult v0, 123, t0      ; above 'z'?
        beq  t0, upok
        sub  v0, 32, v0
upok:   ret

        .func panic_handler     ; cold: compressed, decompressed on demand
        lda  sp, -16(sp)
        stw  ra, 0(sp)
        li   a0, 60             ; print "<error>"
        sys  putc
        li   a0, 101
        sys  putc
        li   a0, 114
        sys  putc
        li   a0, 114
        sys  putc
        li   a0, 111
        sys  putc
        li   a0, 114
        sys  putc
        li   a0, 62
        sys  putc
        bsr  ra, cold_detail
        ldw  ra, 0(sp)
        lda  sp, 16(sp)
        ret

        .func cold_detail       ; deeper cold code: a call out of the buffer
        li   a0, 33
        sys  putc
        ret
`

func main() {
	// 1. Assemble and link.
	obj, err := asm.Assemble(program)
	if err != nil {
		log.Fatal(err)
	}
	im, err := objfile.Link("main", obj)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Profile on a training input that never hits the error path.
	profiler := vm.New(im, []byte("hello world"))
	profiler.EnableProfile()
	if err := profiler.Run(); err != nil {
		log.Fatal(err)
	}

	// 3. Squash: cold code (θ = 0 means "never executed in the profile")
	// is compressed; the error handler disappears from the code stream.
	out, err := core.Squash(obj, profiler.Profile, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("squash: %d -> %d bytes, %d region(s), %d entry stub(s)\n",
		out.Stats.InputBytes, out.Stats.SquashedBytes,
		out.Stats.RegionCount, out.Stats.EntryStubCount)

	// 4. Run the squashed binary on an input that DOES hit the cold path.
	input := []byte("squash me! again!")
	rt, err := core.NewRuntime(out.Meta)
	if err != nil {
		log.Fatal(err)
	}
	m := vm.New(out.Image, input)
	rt.Install(m)
	if err := m.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("squashed output: %q\n", m.Output)
	fmt.Printf("decompressions: %d, restore stubs created: %d\n",
		rt.Stats.Decompressions, rt.Stats.CreateStubMisses)

	// 5. The original produces byte-identical output.
	orig := vm.New(im, input)
	if err := orig.Run(); err != nil {
		log.Fatal(err)
	}
	if string(orig.Output) == string(m.Output) {
		fmt.Println("outputs identical: behaviour preserved")
	} else {
		log.Fatalf("output mismatch: %q vs %q", orig.Output, m.Output)
	}
}
