// Threshold sweep: the paper's central trade-off on one benchmark.
//
// For a single MediaBench-style program this example sweeps the cold-code
// threshold θ and prints, per point, the code size reduction and the
// execution-time ratio against the uncompressed baseline — a one-program
// version of Figures 6 and 7.
//
//	go run ./examples/threshold-sweep [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/mediabench"
	"repro/internal/objfile"
	"repro/internal/squeeze"
	"repro/internal/vm"
)

func main() {
	name := "gsm"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	spec, ok := mediabench.SpecByName(name)
	if !ok {
		log.Fatalf("unknown benchmark %q (try: mediabench -list)", name)
	}
	// Scale the inputs down so the sweep finishes in seconds.
	spec.ProfBytes /= 8
	spec.TimeBytes /= 8

	fmt.Printf("benchmark %s: generating, assembling, squeezing, profiling...\n", spec.Name)
	obj, err := asm.Assemble(spec.Generate())
	if err != nil {
		log.Fatal(err)
	}
	p, err := cfg.Build(obj, "main")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := squeeze.Run(p); err != nil {
		log.Fatal(err)
	}
	sqObj, err := cfg.Lower(p)
	if err != nil {
		log.Fatal(err)
	}
	im, err := objfile.Link("main", sqObj)
	if err != nil {
		log.Fatal(err)
	}
	prof := vm.New(im, spec.ProfilingInput())
	prof.EnableProfile()
	if err := prof.Run(); err != nil {
		log.Fatal(err)
	}

	timing := spec.TimingInput()
	base := vm.New(im, timing)
	if err := base.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline: %d instructions of code, %d cycles on the timing input\n\n",
		len(sqObj.Text), base.Cycles)

	fmt.Printf("%-10s  %9s  %9s  %8s  %8s  %7s\n",
		"θ", "size", "reduction", "time ×", "decomp", "regions")
	for _, theta := range []float64{0, 0.00001, 0.00005, 0.0001, 0.001, 0.01, 1} {
		conf := core.DefaultConfig()
		conf.Theta = theta
		out, err := core.Squash(sqObj, prof.Profile, conf)
		if err != nil {
			log.Fatal(err)
		}
		rt, err := core.NewRuntime(out.Meta)
		if err != nil {
			log.Fatal(err)
		}
		m := vm.New(out.Image, timing)
		rt.Install(m)
		if err := m.Run(); err != nil {
			log.Fatalf("θ=%v: %v", theta, err)
		}
		if string(m.Output) != string(base.Output) {
			log.Fatalf("θ=%v: output diverged", theta)
		}
		fmt.Printf("%-10g  %9d  %8.1f%%  %8.3f  %8d  %7d\n",
			theta, out.Stats.SquashedBytes, 100*out.Stats.Reduction(),
			float64(m.Cycles)/float64(base.Cycles),
			rt.Stats.Decompressions, out.Stats.RegionCount)
	}
	fmt.Println("\nEvery squashed run produced byte-identical output to the baseline.")
}
