// Coldpath: a microscope on the runtime machinery of §2.
//
// This example compresses a program whose cold function f calls another
// compressed function g, and traces the decompressor: the entry stub that
// brings f into the runtime buffer, the CreateStub interception when f's
// call leaves the buffer, the reference-counted restore stub that g returns
// through, and the re-decompression of f. It also demonstrates the restore
// stub being *shared* by a recursive call site, exactly as in the paper.
//
//	go run ./examples/coldpath
package main

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/objfile"
	"repro/internal/vm"
)

const program = `
        .text
        .func main
        lda  sp, -16(sp)
        stw  ra, 0(sp)
loop:   sys  getc
        blt  v0, done
        mov  v0, a0
        sys  putc           ; hot echo loop
        cmpeq v0, 63, t0    ; '?' triggers the cold path
        beq  t0, loop
        li   a0, 3
        bsr  ra, f
        mov  v0, a0
        sys  putc
        br   loop
done:   ldw  ra, 0(sp)
        lda  sp, 16(sp)
        clr  a0
        sys  halt

        .func f             ; cold; calls g and recurses: buffer exits
        lda  sp, -16(sp)
        stw  ra, 0(sp)
        stw  a0, 4(sp)
        ble  a0, f_base
        sub  a0, 1, a0
        bsr  ra, f          ; recursive call: one SHARED restore stub
        ldw  t0, 4(sp)
        add  v0, t0, v0
        br   f_out
f_base: li   a0, 1
        bsr  ra, g          ; call to another compressed function
        ldw  t0, 4(sp)
        add  v0, t0, v0
f_out:  ldw  ra, 0(sp)
        lda  sp, 16(sp)
        ret

        .func g             ; cold too: decompressing it evicts f
        add  a0, 64, v0
        add  v0, 1, v0
        xor  v0, 3, t0
        sll  t0, 2, t1
        srl  t1, 2, t1
        and  t1, 255, t2
        add  t2, v0, t3
        sub  t3, t2, t3
        xor  t3, 5, t4
        and  t4, 0, t4
        add  v0, t4, v0
        sub  v0, 1, v0
        ret
`

func main() {
	obj, err := asm.Assemble(program)
	if err != nil {
		log.Fatal(err)
	}
	im, err := objfile.Link("main", obj)
	if err != nil {
		log.Fatal(err)
	}
	prof := vm.New(im, []byte("abc")) // '?' never profiled -> f, g cold
	prof.EnableProfile()
	if err := prof.Run(); err != nil {
		log.Fatal(err)
	}

	conf := core.DefaultConfig()
	conf.Regions.K = 96
	conf.Regions.Pack = false // keep f and g in separate regions for the demo
	out, err := core.Squash(obj, prof.Profile, conf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("regions: %d, entry stubs: %d\n\n", out.Stats.RegionCount, out.Stats.EntryStubCount)

	rt, err := core.NewRuntime(out.Meta)
	if err != nil {
		log.Fatal(err)
	}
	rt.Trace = func(line string) { fmt.Println("  [runtime]", line) }
	m := vm.New(out.Image, []byte("x?y"))
	rt.Install(m)
	if err := m.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noutput: %q\n", m.Output)
	fmt.Printf("decompressions: %d\n", rt.Stats.Decompressions)
	fmt.Printf("restore stubs: %d created, %d reused (recursion shares its call-site stub)\n",
		rt.Stats.CreateStubMisses, rt.Stats.CreateStubHits)
	fmt.Printf("max live stubs: %d (paper observed at most 9 across MediaBench at θ=0.01)\n",
		rt.Stats.MaxLiveStubs)
	if rt.Stats.LiveStubs != 0 {
		log.Fatalf("stub leak: %d still live", rt.Stats.LiveStubs)
	}
	fmt.Println("all restore stubs reclaimed: reference counts returned to zero")
}
