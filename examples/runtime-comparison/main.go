// Runtime comparison: decompress-to-buffer versus interpret-in-place (§8).
//
// The paper classifies compressed-code execution into two families: forms
// that must be decompressed before execution (squash's choice) and forms
// that are executed or interpreted without decompression. This example runs
// one benchmark both ways at several thresholds and prints the footprint
// and cycle cost of each, showing the §8 trade-off concretely: the
// interpretable form is bigger (it needs a branch-target index) and pays a
// decode cost on every execution, while the decompressed form pays per
// region entry and needs the runtime buffer.
//
//	go run ./examples/runtime-comparison [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/mediabench"
	"repro/internal/objfile"
	"repro/internal/squeeze"
	"repro/internal/vm"
)

func main() {
	name := "adpcm"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	spec, ok := mediabench.SpecByName(name)
	if !ok {
		log.Fatalf("unknown benchmark %q", name)
	}
	spec.ProfBytes /= 8
	spec.TimeBytes /= 8

	obj, err := asm.Assemble(spec.Generate())
	if err != nil {
		log.Fatal(err)
	}
	p, err := cfg.Build(obj, "main")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := squeeze.Run(p); err != nil {
		log.Fatal(err)
	}
	sqObj, err := cfg.Lower(p)
	if err != nil {
		log.Fatal(err)
	}
	im, err := objfile.Link("main", sqObj)
	if err != nil {
		log.Fatal(err)
	}
	prof := vm.New(im, spec.ProfilingInput())
	prof.EnableProfile()
	if err := prof.Run(); err != nil {
		log.Fatal(err)
	}
	timing := spec.TimingInput()
	base := vm.New(im, timing)
	if err := base.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: %d instructions squeezed, %d baseline cycles\n\n",
		spec.Name, len(sqObj.Text), base.Cycles)
	fmt.Printf("%-8s  %-12s  %9s  %8s  %10s  %s\n",
		"θ", "runtime", "size", "time ×", "events", "extra memory")
	for _, theta := range []float64{0.0001, 0.01} {
		for _, interpret := range []bool{false, true} {
			conf := core.DefaultConfig()
			conf.Theta = theta
			conf.Interpret = interpret
			conf.StubCapacity = 64
			out, err := core.Squash(sqObj, prof.Profile, conf)
			if err != nil {
				log.Fatal(err)
			}
			rt, err := core.NewRuntime(out.Meta)
			if err != nil {
				log.Fatal(err)
			}
			m := vm.New(out.Image, timing)
			rt.Install(m)
			if err := m.Run(); err != nil {
				log.Fatal(err)
			}
			if string(m.Output) != string(base.Output) {
				log.Fatal("output diverged")
			}
			mode, events, extra := "decompress", fmt.Sprintf("%d decomp", rt.Stats.Decompressions),
				fmt.Sprintf("buffer %dB", out.Foot.RuntimeBuffer)
			if interpret {
				mode = "interpret"
				events = fmt.Sprintf("%d interp", rt.Stats.InterpInsts)
				extra = fmt.Sprintf("index %dB", out.Foot.InterpIndex)
			}
			fmt.Printf("%-8g  %-12s  %9d  %8.3f  %10s  %s\n",
				theta, mode, out.Stats.SquashedBytes,
				float64(m.Cycles)/float64(base.Cycles), events, extra)
		}
	}
	fmt.Println("\nBoth runtimes produce byte-identical output to the baseline.")
	fmt.Println("The paper chose decompression: the compressed-and-decompressed form is")
	fmt.Println("smaller overall, and hot-ish cold code amortizes the one-time cost.")
}
