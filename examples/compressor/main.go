// Compressor: the split-stream canonical-Huffman coder of §3 in isolation.
//
// This example compresses a realistic instruction sequence, prints the
// per-stream statistics (how many distinct values each operand stream
// carries, and its share of the compressed bits), and round-trips the
// sequence through the decoder.
//
//	go run ./examples/compressor
package main

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/huffman"
	"repro/internal/isa"
	"repro/internal/objfile"
	"repro/internal/streamcomp"
)

const source = `
        .text
        .func crc
        lda  sp, -32(sp)
        stw  ra, 0(sp)
        clr  t0
        li   t1, 255
loop:   ldb  t2, 0(a0)
        xor  t0, t2, t0
        li   t3, 8
bits:   and  t0, 1, t4
        srl  t0, 1, t0
        beq  t4, nofeed
        xor  t0, 140, t0
nofeed: sub  t3, 1, t3
        bgt  t3, bits
        add  a0, 1, a0
        sub  a1, 1, a1
        bgt  a1, loop
        and  t0, t1, v0
        ldw  ra, 0(sp)
        lda  sp, 32(sp)
        ret
`

func main() {
	obj, err := asm.Assemble(source)
	if err != nil {
		log.Fatal(err)
	}
	im, err := objfile.Link("crc", obj)
	if err != nil {
		log.Fatal(err)
	}
	seq := make([]isa.Inst, len(im.Text))
	for i, w := range im.Text {
		seq[i] = isa.Decode(w)
	}

	comp := streamcomp.Train([][]isa.Inst{seq}, streamcomp.Options{})
	var w huffman.BitWriter
	if err := comp.Compress(&w, seq); err != nil {
		log.Fatal(err)
	}
	blob := w.Bytes()

	fmt.Printf("%d instructions = %d raw bytes\n", len(seq), 4*len(seq))
	fmt.Printf("compressed: %d bits (%.1f bits/instruction, γ = %.3f)\n",
		w.Len(), float64(w.Len())/float64(len(seq)),
		float64(w.Len())/float64(32*len(seq)))
	fmt.Printf("code tables: %d bytes (N[] and D[] arrays for all %d streams)\n\n",
		comp.TableBytes(), isa.NumStreams)

	// Per-field-type stream population, as in the paper's splitting scheme.
	counts := map[isa.StreamKind]map[uint32]bool{}
	totals := map[isa.StreamKind]int{}
	for _, in := range seq {
		for _, fv := range isa.Fields(in) {
			if counts[fv.Kind] == nil {
				counts[fv.Kind] = map[uint32]bool{}
			}
			counts[fv.Kind][fv.Value] = true
			totals[fv.Kind]++
		}
	}
	fmt.Printf("%-10s  %10s  %15s\n", "stream", "fields", "distinct values")
	for k := isa.StreamKind(0); k < isa.NumStreams; k++ {
		if totals[k] == 0 {
			continue
		}
		fmt.Printf("%-10v  %10d  %15d\n", k, totals[k], len(counts[k]))
	}

	// Round trip.
	var back []isa.Inst
	bits, err := comp.Decompress(blob, 0, func(in isa.Inst) error {
		back = append(back, in)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := range seq {
		if back[i] != seq[i] {
			log.Fatalf("instruction %d corrupted by round trip", i)
		}
	}
	fmt.Printf("\nround trip: %d bits decoded back to %d identical instructions\n", bits, len(back))
}
